//! Structured substrate state dumps.
//!
//! `dmtcp replay` (crates/core) seeks a re-executed run to a chosen virtual
//! time — typically a fault-matrix cell's moment of death — and then needs
//! to show *everything the kernel knows*: processes with their address
//! spaces and fd tables, connections with their kernel buffers and
//! in-flight bytes, listeners, ptys, and the open-file table. This module
//! renders that as one JSON document via the hand-rolled writer in `obs`
//! (the workspace has no serde), so the dump can be embedded verbatim in a
//! replay snapshot next to coordinator/relay barrier state.

use crate::fdtable::FdObject;
use crate::mem::RegionKind;
use crate::proc::{ProcState, ThreadState};
use crate::world::World;
use obs::json::JsonWriter;
use simkit::Nanos;

fn fd_object_name(obj: &FdObject) -> String {
    match obj {
        FdObject::File(id) => format!("file:{}", id.0),
        FdObject::Sock(cid, end) => format!("sock:{}/{}", cid.0, end),
        FdObject::Listener(id) => format!("listener:{}", id.0),
        FdObject::PtyMaster(id) => format!("pty-master:{}", id.0),
        FdObject::PtySlave(id) => format!("pty-slave:{}", id.0),
    }
}

/// Render the full kernel object model of `w` at virtual time `now` as one
/// JSON document.
pub fn dump_json(w: &World, now: Nanos) -> String {
    let mut j = JsonWriter::new();
    j.obj_begin();
    j.field_u64("at", now.0);

    j.key("nodes").arr_begin();
    for node in &w.nodes {
        j.obj_begin();
        j.field_u64("id", node.id.0 as u64);
        j.field_str("hostname", &node.hostname);
        j.field_u64(
            "procs",
            w.procs.values().filter(|p| p.node == node.id).count() as u64,
        );
        j.obj_end();
    }
    j.arr_end();

    j.key("procs").arr_begin();
    for p in w.procs.values() {
        j.obj_begin();
        j.field_u64("pid", p.pid.0 as u64);
        j.field_u64("ppid", p.ppid.0 as u64);
        j.field_u64("node", p.node.0 as u64);
        j.field_str("cmd", &p.cmd);
        match p.state {
            ProcState::Running => j.field_str("state", "running"),
            ProcState::Zombie(code) => j.field_str("state", &format!("zombie({code})")),
        };
        j.key("user_suspended");
        j.val_bool(p.user_suspended);
        if let Some(v) = p.virt_pid {
            j.field_u64("virt_pid", v as u64);
        }
        j.key("threads").arr_begin();
        for t in &p.threads {
            j.obj_begin();
            j.field_u64("tid", t.tid.0 as u64);
            j.field_str(
                "state",
                match t.state {
                    ThreadState::Runnable => "runnable",
                    ThreadState::Blocked => "blocked",
                    ThreadState::Exited => "exited",
                },
            );
            j.key("user");
            j.val_bool(t.user);
            j.field_str("program", t.program.tag());
            j.obj_end();
        }
        j.arr_end();
        j.key("mem").obj_begin();
        j.field_u64("regions", p.mem.region_count() as u64);
        j.field_u64("bytes", p.mem.total_bytes());
        j.key("maps").arr_begin();
        for (_, r) in p.mem.iter() {
            j.obj_begin();
            j.field_str("addr", &format!("{:012x}", r.start));
            j.field_str("name", &r.name);
            j.field_str(
                "kind",
                match &r.kind {
                    RegionKind::Lib => "lib",
                    RegionKind::Heap => "heap",
                    RegionKind::Anon => "anon",
                    RegionKind::Shm { .. } => "shm",
                },
            );
            if let RegionKind::Shm { backing } = &r.kind {
                j.field_str("backing", backing);
            }
            j.field_u64("prot", r.prot as u64);
            j.field_u64("bytes", r.len());
            j.field_str("digest", &format!("{:016x}", r.content.digest()));
            j.obj_end();
        }
        j.arr_end();
        j.obj_end();
        j.key("fds").arr_begin();
        for (fd, entry) in p.fds.iter() {
            j.obj_begin();
            j.field_u64("fd", fd as u64);
            j.field_str("obj", &fd_object_name(&entry.obj));
            j.key("cloexec");
            j.val_bool(entry.cloexec);
            j.obj_end();
        }
        j.arr_end();
        j.obj_end();
    }
    j.arr_end();

    j.key("conns").arr_begin();
    for c in w.conns.values() {
        j.obj_begin();
        j.field_u64("id", c.id.0);
        j.field_str("kind", &format!("{:?}", c.kind).to_lowercase());
        j.key("nodes").arr_begin();
        j.val_u64(c.node[0].0 as u64).val_u64(c.node[1].0 as u64);
        j.arr_end();
        j.key("dirs").arr_begin();
        for d in &c.dirs {
            j.obj_begin();
            j.field_u64("in_flight", d.in_flight);
            j.field_u64("recv_buf", d.recv_buf.len() as u64);
            j.field_u64("tx_total", d.tx_total);
            j.field_u64("rx_total", d.rx_total);
            j.obj_end();
        }
        j.arr_end();
        j.key("end_refs").arr_begin();
        j.val_u64(c.end_refs[0] as u64)
            .val_u64(c.end_refs[1] as u64);
        j.arr_end();
        j.key("closed").arr_begin();
        j.val_bool(c.closed[0]).val_bool(c.closed[1]);
        j.arr_end();
        j.obj_end();
    }
    j.arr_end();

    j.key("listeners").arr_begin();
    for l in w.listeners.values() {
        j.obj_begin();
        j.field_u64("id", l.id.0);
        j.field_u64("node", l.node.0 as u64);
        j.field_u64("port", l.port as u64);
        j.field_u64("backlog", l.backlog.len() as u64);
        j.field_u64("refs", l.refs as u64);
        j.obj_end();
    }
    j.arr_end();

    j.key("ptys").arr_begin();
    for p in w.ptys.values() {
        j.obj_begin();
        j.field_u64("id", p.id.0 as u64);
        j.field_u64("to_slave", p.to_slave.len() as u64);
        j.field_u64("to_master", p.to_master.len() as u64);
        j.field_u64("master_refs", p.master_refs as u64);
        j.field_u64("slave_refs", p.slave_refs as u64);
        if let Some(pid) = p.controlling_pid {
            j.field_u64("controlling_pid", pid.0 as u64);
        }
        j.obj_end();
    }
    j.arr_end();

    j.key("open_files").arr_begin();
    for (id, f) in &w.open_files {
        j.obj_begin();
        j.field_u64("id", id.0);
        j.field_str("path", &f.path);
        j.field_u64("offset", f.offset);
        j.key("writable");
        j.val_bool(f.writable);
        j.field_u64("refs", f.refs as u64);
        j.obj_end();
    }
    j.arr_end();

    j.obj_end();
    j.into_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Program, Registry, Step};
    use crate::spec::HwSpec;
    use crate::Kernel;

    struct Idle;
    impl Program for Idle {
        fn tag(&self) -> &'static str {
            "idle"
        }
        fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
            Step::Sleep(Nanos::from_secs(1))
        }
        fn save(&self) -> Vec<u8> {
            Vec::new()
        }
    }

    #[test]
    fn dump_is_valid_json_and_names_processes() {
        let mut w = World::new(HwSpec::default(), 1, Registry::new());
        let mut sim = crate::world::OsSim::new();
        let pid = w.spawn(
            &mut sim,
            crate::world::NodeId(0),
            "idle",
            Box::new(Idle),
            crate::world::Pid(1),
            std::collections::BTreeMap::new(),
        );
        let dump = dump_json(&w, sim.now());
        obs::json::validate(&dump).unwrap();
        assert!(dump.contains("\"hostname\":\"node00\""));
        assert!(dump.contains(&format!("\"pid\":{}", pid.0)));
        assert!(dump.contains("\"maps\""));
    }
}
