//! The simulated-application programming model.
//!
//! A [`Program`] is a poll-style state machine: the scheduler calls
//! [`Program::step`] whenever its thread is runnable, the program makes
//! syscalls through the [`crate::Kernel`] facade, and returns a [`Step`]
//! telling the scheduler what it is doing next. All persistent control state
//! lives inside the program struct and must round-trip through
//! [`Program::save`] / a [`Registry`] loader — that is the simulated
//! equivalent of a thread's registers and stack, and it is all the
//! checkpointer ever sees of an application.

use crate::kernel::Kernel;
use simkit::{Nanos, SnapError};
use std::collections::BTreeMap;

/// What a thread does after returning from `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Occupy a CPU core for this many work units, then step again.
    Compute(u64),
    /// Step again as soon as possible (after the scheduler quantum).
    Yield,
    /// Wait until a kernel object wakes this thread (a `WouldBlock` syscall
    /// in this step registered the waker).
    Block,
    /// Sleep for a fixed interval, then step again.
    Sleep(Nanos),
    /// Terminate this thread only (`pthread_exit`); the process exits with
    /// code 0 when its last thread does.
    ExitThread,
    /// Terminate the whole process with this exit code (`exit`).
    Exit(i32),
}

/// A simulated application (or daemon, or checkpoint-manager) thread body.
pub trait Program: 'static {
    /// Advance the state machine by one step.
    fn step(&mut self, k: &mut Kernel<'_>) -> Step;

    /// Registry key identifying the program's *code* — the analogue of the
    /// executable path stored in a checkpoint image.
    fn tag(&self) -> &'static str;

    /// Serialize the complete control state (registers + stack analogue).
    fn save(&self) -> Vec<u8>;

    /// Deliver an asynchronous signal. Default: ignore (SIG_DFL for
    /// non-fatal signals in this model).
    fn on_signal(&mut self, _sig: u8) {}
}

/// Loader function reconstructing a program from its saved state.
pub type Loader = fn(&[u8]) -> Result<Box<dyn Program>, SnapError>;

/// Maps program tags to loaders — the analogue of executables still being
/// present on disk at restart time.
#[derive(Default, Clone)]
pub struct Registry {
    loaders: BTreeMap<&'static str, Loader>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register a loader under `tag`. Registering two different loaders
    /// under one tag is a build error in disguise; panic loudly.
    pub fn register(&mut self, tag: &'static str, loader: Loader) {
        if self.loaders.insert(tag, loader).is_some() {
            panic!("duplicate program tag {tag:?} in registry");
        }
    }

    /// Register a `Program + Snap` type under its own tag.
    pub fn register_snap<P>(&mut self, tag: &'static str)
    where
        P: Program + simkit::Snap,
    {
        fn load<P: Program + simkit::Snap>(bytes: &[u8]) -> Result<Box<dyn Program>, SnapError> {
            Ok(Box::new(P::from_snap_bytes(bytes)?))
        }
        self.register(tag, load::<P>);
    }

    /// Reconstruct a program from `(tag, state)`.
    pub fn load(&self, tag: &str, state: &[u8]) -> Result<Box<dyn Program>, RegistryError> {
        let loader = self
            .loaders
            .get(tag)
            .ok_or_else(|| RegistryError::UnknownTag(tag.to_string()))?;
        loader(state).map_err(RegistryError::Corrupt)
    }

    /// Whether `tag` is known.
    pub fn knows(&self, tag: &str) -> bool {
        self.loaders.contains_key(tag)
    }
}

/// Errors reconstructing programs at restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// No loader for this tag — the "executable" is missing on the restart
    /// host.
    UnknownTag(String),
    /// The saved state failed to decode.
    Corrupt(SnapError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTag(t) => write!(f, "no program registered for tag {t:?}"),
            RegistryError::Corrupt(e) => write!(f, "program state corrupt: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Placeholder swapped into a thread slot while its real program is being
/// stepped (the world cannot hold two `&mut` into itself).
pub struct Tombstone;

impl Program for Tombstone {
    fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
        unreachable!("tombstone program stepped — reentrant dispatch bug")
    }
    fn tag(&self) -> &'static str {
        "__tombstone__"
    }
    fn save(&self) -> Vec<u8> {
        unreachable!("tombstone program saved — checkpoint raced a dispatch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::impl_snap;

    struct Null {
        n: u64,
    }
    impl_snap!(struct Null { n });
    impl Program for Null {
        fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
            Step::Exit(0)
        }
        fn tag(&self) -> &'static str {
            "null"
        }
        fn save(&self) -> Vec<u8> {
            use simkit::Snap;
            self.to_snap_bytes()
        }
    }

    #[test]
    fn registry_roundtrip() {
        let mut reg = Registry::new();
        reg.register_snap::<Null>("null");
        assert!(reg.knows("null"));
        let p = Null { n: 77 };
        let loaded = reg.load("null", &p.save()).unwrap();
        assert_eq!(loaded.tag(), "null");
    }

    #[test]
    fn unknown_tag_is_an_error() {
        let reg = Registry::new();
        match reg.load("ghost", &[]) {
            Err(RegistryError::UnknownTag(t)) => assert_eq!(t, "ghost"),
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("unexpectedly loaded a ghost program"),
        }
    }

    #[test]
    fn corrupt_state_is_an_error() {
        let mut reg = Registry::new();
        reg.register_snap::<Null>("null");
        assert!(matches!(
            reg.load(
                "null",
                &[0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff]
            ),
            Err(RegistryError::Corrupt(_))
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate program tag")]
    fn duplicate_registration_panics() {
        let mut reg = Registry::new();
        reg.register_snap::<Null>("null");
        reg.register_snap::<Null>("null");
    }
}
