//! Simulated process address spaces.
//!
//! An [`AddressSpace`] is an ordered set of [`Region`]s. Region contents
//! come in three flavours:
//!
//! * [`Content::Real`] — actual bytes (application state). Reference-counted
//!   so `fork` is copy-on-write at region granularity, which is what makes
//!   forked checkpointing cheap.
//! * [`Content::Shared`] — a segment shared *between* processes (`mmap` of a
//!   backing file with `MAP_SHARED`), aliased through `Rc<RefCell<…>>`.
//! * [`Content::Synthetic`] — deterministic fill described by `(seed, len,
//!   profile)`. Used for multi-gigabyte ballast (RunCMS's 680 MB, Figure 6's
//!   70 GB) so the *host* never allocates it, while the checkpointer can
//!   still stream the exact bytes through the real compressor on demand.
//!
//! The checkpoint layer consumes regions through [`AddressSpace::chunks`],
//! which hands out either borrowed real bytes or the synthetic recipe — it
//! never learns what the application stored there.

use simkit::impl_snap;
use simkit::rng::{mix2, splitmix64};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Protection bits (PROT_READ/WRITE/EXEC compressed into one byte).
pub const PROT_R: u8 = 1;
/// Write permission.
pub const PROT_W: u8 = 2;
/// Execute permission.
pub const PROT_X: u8 = 4;

/// What a region is, for `/proc/<pid>/maps`-style introspection and for the
/// restore-time shared-memory rules of §4.5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegionKind {
    /// Program text / dynamic library image.
    Lib,
    /// Heap (`brk`/anonymous map used as heap).
    Heap,
    /// Anonymous mapping (ballast, arenas).
    Anon,
    /// `MAP_SHARED` mapping of a backing file at this path.
    Shm {
        /// Absolute path of the backing file.
        backing: String,
    },
}

impl_snap!(enum RegionKind { Lib, Heap, Anon, Shm { backing } });

/// Deterministic fill recipes with calibrated compressibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillProfile {
    /// All zero bytes (untouched allocations; NAS/IS's empty buckets).
    Zeros,
    /// Incompressible noise (numeric data, already-compressed payloads).
    Random,
    /// Natural-language-like text (szip ratio ≈ 4–6×).
    Text,
    /// Machine-code-like structured binary (szip ratio ≈ 2×, the typical
    /// compressibility of loaded dynamic libraries).
    Code,
    /// Per-page mixture: `zero_pct`% zero pages, `text_pct`% text pages,
    /// `code_pct`% code pages, remainder random. Percentages must sum ≤ 100.
    Mixed {
        /// Percent of pages that are zero.
        zero_pct: u8,
        /// Percent of pages that are text-like.
        text_pct: u8,
        /// Percent of pages that are code-like.
        code_pct: u8,
    },
}

impl_snap!(enum FillProfile { Zeros, Random, Text, Code, Mixed { zero_pct, text_pct, code_pct } });

const PAGE: u64 = 4096;
const WORDS: [&str; 16] = [
    "checkpoint ",
    "restart ",
    "the ",
    "of ",
    "distributed ",
    "process ",
    "socket ",
    "memory ",
    "thread ",
    "cluster ",
    "barrier ",
    "kernel ",
    "image ",
    "buffer ",
    "transparent ",
    "data ",
];

impl FillProfile {
    /// Fill `out` with the bytes of this profile at absolute `offset` within
    /// the region. Chunk-boundary independent: any chunking of the region
    /// produces the same byte stream.
    pub fn fill(&self, seed: u64, offset: u64, out: &mut [u8]) {
        match self {
            FillProfile::Zeros => out.fill(0),
            FillProfile::Random => fill_random(seed, offset, out),
            FillProfile::Text => fill_text(seed, offset, out),
            FillProfile::Code => fill_code(seed, offset, out),
            FillProfile::Mixed {
                zero_pct,
                text_pct,
                code_pct,
            } => {
                debug_assert!(*zero_pct as u16 + *text_pct as u16 + *code_pct as u16 <= 100);
                let mut pos = 0usize;
                while pos < out.len() {
                    let abs = offset + pos as u64;
                    let page = abs / PAGE;
                    let page_end = (page + 1) * PAGE;
                    let take = ((page_end - abs) as usize).min(out.len() - pos);
                    let roll = (mix2(seed, page) % 100) as u8;
                    let sub = &mut out[pos..pos + take];
                    if roll < *zero_pct {
                        sub.fill(0);
                    } else if roll < zero_pct + text_pct {
                        fill_text(seed, abs, sub);
                    } else if roll < zero_pct + text_pct + code_pct {
                        fill_code(seed, abs, sub);
                    } else {
                        fill_random(seed, abs, sub);
                    }
                    pos += take;
                }
            }
        }
    }

    /// Materialize `len` bytes starting at offset 0 (tests and small fills).
    pub fn bytes(&self, seed: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill(seed, 0, &mut v);
        v
    }
}

/// Incompressible: one splitmix word per aligned 8-byte cell.
fn fill_random(seed: u64, offset: u64, out: &mut [u8]) {
    for (i, b) in out.iter_mut().enumerate() {
        let abs = offset + i as u64;
        let cell = abs / 8;
        let mut s = mix2(seed, cell);
        let word = splitmix64(&mut s);
        *b = (word >> ((abs % 8) * 8)) as u8;
    }
}

/// Text-like: 16-byte cells, each a word chosen by a per-cell hash; szip
/// finds abundant 3+ byte matches.
fn fill_text(seed: u64, offset: u64, out: &mut [u8]) {
    for (i, b) in out.iter_mut().enumerate() {
        let abs = offset + i as u64;
        let cell = abs / 16;
        let w = WORDS[(mix2(seed ^ 0x7e87, cell) % 16) as usize].as_bytes();
        *b = w[(abs % 16) as usize % w.len()];
    }
}

/// Code-like: 4-byte "instructions" — a small opcode vocabulary, a 16-value
/// register byte, a displacement that is zero half the time, and a zero high
/// byte. Compresses ≈ 2× under szip, like real `.so` text under gzip.
fn fill_code(seed: u64, offset: u64, out: &mut [u8]) {
    for (i, b) in out.iter_mut().enumerate() {
        let abs = offset + i as u64;
        let insn = abs / 4;
        let h = mix2(seed ^ 0xc0de, insn);
        *b = match abs % 4 {
            0 => 0x40 | (mix2(seed ^ 0xc0de, insn / 16) % 8) as u8,
            1 => (insn % 16) as u8,
            2 => {
                // Displacement byte: zero three times out of four.
                if h & 0x300 != 0 {
                    0
                } else {
                    (h >> 16) as u8
                }
            }
            _ => 0,
        };
    }
}

/// Region contents.
#[derive(Debug, Clone)]
pub enum Content {
    /// Real bytes, COW-shared after fork.
    Real(Rc<Vec<u8>>),
    /// Bytes shared live between processes (`MAP_SHARED`).
    Shared(Rc<RefCell<Vec<u8>>>),
    /// Deterministic synthetic fill; never materialized wholesale.
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Length in bytes.
        len: u64,
        /// Fill recipe.
        profile: FillProfile,
    },
}

impl Content {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Content::Real(b) => b.len() as u64,
            Content::Shared(b) => b.borrow().len() as u64,
            Content::Synthetic { len, .. } => *len,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A content-identity digest used by tests to prove bit-identical
    /// restore. Real/Shared hash their bytes; Synthetic hashes its recipe
    /// (its bytes are a pure function of the recipe).
    pub fn digest(&self) -> u64 {
        match self {
            Content::Real(b) => hash_bytes(b),
            Content::Shared(b) => hash_bytes(&b.borrow()),
            Content::Synthetic { seed, len, profile } => {
                let mut w = simkit::SnapWriter::new();
                use simkit::Snap;
                seed.save(&mut w);
                len.save(&mut w);
                profile.save(&mut w);
                hash_bytes(&w.into_bytes()) ^ 0x5e_ed
            }
        }
    }
}

fn hash_bytes(b: &[u8]) -> u64 {
    // FNV-1a 64.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &x in b {
        h ^= x as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// One mapped region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Base virtual address (cosmetic but stable across checkpoint/restart).
    pub start: u64,
    /// Mapping name as `/proc/<pid>/maps` would show it.
    pub name: String,
    /// Kind, driving restore rules.
    pub kind: RegionKind,
    /// Protection bits.
    pub prot: u8,
    /// The bytes.
    pub content: Content,
}

impl Region {
    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.content.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.content.is_empty()
    }
}

/// A chunk handed to the checkpoint writer.
pub enum ChunkRef<'a> {
    /// Borrowed real bytes.
    Bytes(&'a [u8]),
    /// Synthetic recipe covering `len` bytes starting at `offset` within
    /// the region.
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Offset of this chunk within the region.
        offset: u64,
        /// Chunk length.
        len: u64,
        /// Fill recipe.
        profile: FillProfile,
    },
}

/// Copy-on-write accounting for an in-flight forked checkpoint: how much
/// the live process paid in physical copies because it wrote to regions
/// still shared with the frozen snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CowStats {
    /// Regions that were physically duplicated by a write.
    pub copied_regions: u64,
    /// Bytes physically duplicated (region granularity: the whole region is
    /// copied on the first write, mirroring `Rc::make_mut`).
    pub copied_bytes: u64,
}

/// A process address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    regions: Vec<Option<Region>>,
    next_addr: u64,
    /// Active COW ledger; `Some` between `begin_cow_snapshot` and
    /// `end_cow_snapshot` on the *live* side of a forked checkpoint.
    cow: Option<CowStats>,
    /// Region-granularity dirty bitmap for incremental checkpointing.
    /// `Some` once armed; every write (and new mapping) inserts the region
    /// id. The set is *persistent* — it survives forks and checkpoint
    /// snapshots — and is only swapped out by [`Self::take_dirty`] when a
    /// capture consumes it. Snapshots and fork children start untracked.
    dirty: Option<BTreeSet<RegionId>>,
}

/// Index of a region within its address space.
pub type RegionId = usize;

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            next_addr: 0x0040_0000,
            cow: None,
            dirty: None,
        }
    }

    /// Map a new region; returns its id.
    pub fn map(
        &mut self,
        name: impl Into<String>,
        kind: RegionKind,
        prot: u8,
        content: Content,
    ) -> RegionId {
        let len = content.len();
        let start = self.next_addr;
        // Keep a guard gap and page alignment for realism.
        self.next_addr += len.div_ceil(PAGE) * PAGE + PAGE;
        self.regions.push(Some(Region {
            start,
            name: name.into(),
            kind,
            prot,
            content,
        }));
        let id = self.regions.len() - 1;
        // A region mapped after the last capture has no prior-generation
        // image to alias — it is dirty by definition.
        if let Some(d) = &mut self.dirty {
            d.insert(id);
        }
        id
    }

    /// Unmap a region (id stays dead forever).
    pub fn unmap(&mut self, id: RegionId) {
        self.regions[id] = None;
        if let Some(d) = &mut self.dirty {
            d.remove(&id);
        }
    }

    /// Iterate live regions as `(id, &Region)`.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &Region)> {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }

    /// A live region by id.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.regions.get(id).and_then(|r| r.as_ref())
    }

    /// Number of live regions.
    pub fn region_count(&self) -> usize {
        self.iter().count()
    }

    /// Total mapped bytes.
    pub fn total_bytes(&self) -> u64 {
        self.iter().map(|(_, r)| r.len()).sum()
    }

    /// Read from a region. Synthetic regions materialize on the fly.
    pub fn read(&self, id: RegionId, offset: u64, len: usize) -> Vec<u8> {
        let r = self.region(id).expect("read from unmapped region");
        assert!(offset + len as u64 <= r.len(), "read past end of region");
        match &r.content {
            Content::Real(b) => b[offset as usize..offset as usize + len].to_vec(),
            Content::Shared(b) => b.borrow()[offset as usize..offset as usize + len].to_vec(),
            Content::Synthetic { seed, profile, .. } => {
                let mut out = vec![0u8; len];
                profile.fill(*seed, offset, &mut out);
                out
            }
        }
    }

    /// Write into a region. Triggers region-granularity copy-on-write for
    /// `Real` content shared with a forked sibling; writes through to every
    /// mapper for `Shared` content. Writing a synthetic region is a logic
    /// error — ballast is immutable by construction.
    ///
    /// Returns the number of bytes *physically copied* to satisfy the write
    /// (the whole region length when the write broke COW sharing, zero when
    /// the region was already exclusively owned). When a COW ledger is
    /// active ([`Self::begin_cow_snapshot`]) the copy is also charged there.
    pub fn write(&mut self, id: RegionId, offset: u64, bytes: &[u8]) -> u64 {
        let r = self.regions[id].as_mut().expect("write to unmapped region");
        assert!(r.prot & PROT_W != 0, "write to read-only region {}", r.name);
        assert!(
            offset + bytes.len() as u64 <= r.len(),
            "write past end of region"
        );
        if let Some(d) = &mut self.dirty {
            d.insert(id);
        }
        match &mut r.content {
            Content::Real(b) => {
                let copied = if Rc::strong_count(b) > 1 {
                    b.len() as u64
                } else {
                    0
                };
                let target = Rc::make_mut(b); // COW point
                target[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
                if copied > 0 {
                    if let Some(cow) = &mut self.cow {
                        cow.copied_regions += 1;
                        cow.copied_bytes += copied;
                    }
                }
                copied
            }
            Content::Shared(b) => {
                // MAP_SHARED writes go straight through — never copied, and
                // visible to the frozen snapshot too (the checkpoint writer
                // materializes shared segments eagerly at the fork instant).
                b.borrow_mut()[offset as usize..offset as usize + bytes.len()]
                    .copy_from_slice(bytes);
                0
            }
            Content::Synthetic { .. } => {
                panic!("write into synthetic ballast region {}", r.name)
            }
        }
    }

    /// Fork: COW-clone every region. `Real` shares the Rc (copied lazily on
    /// first write by either side); `Shared` stays shared (UNIX semantics);
    /// `Synthetic` recipes are `Copy`.
    pub fn fork_cow(&self) -> AddressSpace {
        AddressSpace {
            regions: self.regions.clone(),
            next_addr: self.next_addr,
            cow: None,
            dirty: None,
        }
    }

    /// Begin a forked-checkpoint snapshot: returns a frozen COW clone of
    /// this address space and arms a fresh dirty ledger on the live side.
    /// Every subsequent [`Self::write`] that breaks sharing with the
    /// snapshot charges the ledger until [`Self::end_cow_snapshot`].
    ///
    /// The caller must keep the returned snapshot alive for the duration of
    /// the background write — dropping it releases the `Rc` sharing that
    /// makes writes detectable as COW copies.
    pub fn begin_cow_snapshot(&mut self) -> AddressSpace {
        self.cow = Some(CowStats::default());
        AddressSpace {
            regions: self.regions.clone(),
            next_addr: self.next_addr,
            cow: None,
            dirty: None,
        }
    }

    /// End the forked-checkpoint snapshot window and collect the dirty
    /// ledger. Idempotent: returns zeros if no snapshot was active.
    pub fn end_cow_snapshot(&mut self) -> CowStats {
        self.cow.take().unwrap_or_default()
    }

    /// Whether a forked-checkpoint COW ledger is currently armed.
    pub fn cow_snapshot_active(&self) -> bool {
        self.cow.is_some()
    }

    /// Arm dirty-region tracking. From this instant on, every write and
    /// every new mapping marks its region; a capture that consumes the set
    /// via [`Self::take_dirty`] leaves tracking armed with a fresh empty
    /// set. Idempotent: re-arming keeps the accumulated set.
    pub fn enable_dirty_tracking(&mut self) {
        if self.dirty.is_none() {
            self.dirty = Some(BTreeSet::new());
        }
    }

    /// Whether dirty-region tracking is armed.
    pub fn dirty_tracking_active(&self) -> bool {
        self.dirty.is_some()
    }

    /// The regions written since tracking was armed (or last taken), if
    /// tracking is on.
    pub fn dirty_regions(&self) -> Option<&BTreeSet<RegionId>> {
        self.dirty.as_ref()
    }

    /// Consume the dirty set, swapping in a fresh empty one so tracking
    /// continues seamlessly. Returns `None` when tracking was never armed.
    ///
    /// The caller owns the returned set until the image it captured becomes
    /// *durable*; if the generation aborts instead, the set must be merged
    /// back via [`Self::merge_dirty`] — otherwise the next incremental
    /// capture would treat those regions as clean and alias stale bytes.
    pub fn take_dirty(&mut self) -> Option<BTreeSet<RegionId>> {
        self.dirty.replace(BTreeSet::new())
    }

    /// Union a previously taken dirty set back in (abort path). Arms
    /// tracking if it was off.
    pub fn merge_dirty(&mut self, taken: BTreeSet<RegionId>) {
        match &mut self.dirty {
            Some(d) => d.extend(taken),
            None => self.dirty = Some(taken),
        }
    }

    /// Stream a region's content in ≤`chunk` byte pieces for the image
    /// writer, without materializing synthetic bytes.
    pub fn chunks(&self, id: RegionId, chunk: u64) -> Vec<ChunkRef<'_>> {
        let r = self.region(id).expect("chunks of unmapped region");
        match &r.content {
            Content::Real(b) => b.chunks(chunk as usize).map(ChunkRef::Bytes).collect(),
            Content::Shared(_) => {
                // Borrow restrictions on RefCell mean shared content is
                // surfaced as a single materialized chunk by the caller via
                // `read`; keep the API total by delegating.
                vec![]
            }
            Content::Synthetic { seed, len, profile } => {
                let mut out = Vec::new();
                let mut off = 0u64;
                while off < *len {
                    let take = chunk.min(*len - off);
                    out.push(ChunkRef::Synthetic {
                        seed: *seed,
                        offset: off,
                        len: take,
                        profile: *profile,
                    });
                    off += take;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_chunk_boundary_independent() {
        for profile in [
            FillProfile::Zeros,
            FillProfile::Random,
            FillProfile::Text,
            FillProfile::Code,
            FillProfile::Mixed {
                zero_pct: 30,
                text_pct: 30,
                code_pct: 20,
            },
        ] {
            let whole = profile.bytes(99, 40_000);
            let mut pieced = vec![0u8; 40_000];
            let mut off = 0usize;
            for size in [1usize, 7, 4096, 13, 10_000].iter().cycle() {
                if off >= pieced.len() {
                    break;
                }
                let take = (*size).min(pieced.len() - off);
                let (s, e) = (off, off + take);
                profile.fill(99, s as u64, &mut pieced[s..e]);
                off = e;
            }
            assert_eq!(whole, pieced, "profile {profile:?}");
        }
    }

    #[test]
    fn profiles_hit_their_compressibility_bands() {
        let len = 1 << 20;
        let ratio = |p: FillProfile| {
            let raw = p.bytes(7, len);
            len as f64 / szip::compressed_len(&raw) as f64
        };
        let zeros = ratio(FillProfile::Zeros);
        let text = ratio(FillProfile::Text);
        let code = ratio(FillProfile::Code);
        let random = ratio(FillProfile::Random);
        assert!(zeros > 50.0, "zeros ratio {zeros}");
        assert!(text > 3.0 && text < 20.0, "text ratio {text}");
        assert!(code > 1.5 && code < 4.0, "code ratio {code}");
        assert!(random > 0.9 && random < 1.1, "random ratio {random}");
        assert!(zeros > text && text > code && code > random);
    }

    #[test]
    fn mixed_ratio_interpolates() {
        let len = 1 << 20;
        let p = FillProfile::Mixed {
            zero_pct: 50,
            text_pct: 0,
            code_pct: 0,
        };
        let raw = p.bytes(3, len);
        let ratio = len as f64 / szip::compressed_len(&raw) as f64;
        // Half zeros, half random → ratio just under 2.
        assert!(ratio > 1.6 && ratio < 2.4, "ratio {ratio}");
    }

    #[test]
    fn cow_fork_shares_until_write() {
        let mut a = AddressSpace::new();
        let id = a.map(
            "heap",
            RegionKind::Heap,
            PROT_R | PROT_W,
            Content::Real(Rc::new(vec![1u8; 100])),
        );
        let mut b = a.fork_cow();
        // Writing in the child must not affect the parent.
        b.write(id, 0, &[9, 9, 9]);
        assert_eq!(a.read(id, 0, 3), vec![1, 1, 1]);
        assert_eq!(b.read(id, 0, 3), vec![9, 9, 9]);
        // And the parent writing afterwards must not affect the child.
        a.write(id, 50, &[7]);
        assert_eq!(b.read(id, 50, 1), vec![1]);
    }

    #[test]
    fn cow_ledger_charges_first_write_per_shared_region() {
        let mut a = AddressSpace::new();
        let id1 = a.map(
            "heap",
            RegionKind::Heap,
            PROT_R | PROT_W,
            Content::Real(Rc::new(vec![1u8; 1000])),
        );
        let id2 = a.map(
            "anon",
            RegionKind::Anon,
            PROT_R | PROT_W,
            Content::Real(Rc::new(vec![2u8; 500])),
        );
        let snap = a.begin_cow_snapshot();
        assert!(a.cow_snapshot_active());
        // First write to a shared region copies the whole region once.
        assert_eq!(a.write(id1, 0, &[9]), 1000);
        // Second write to the same region: already exclusive, no copy.
        assert_eq!(a.write(id1, 10, &[9]), 0);
        // First write to the other region copies it too.
        assert_eq!(a.write(id2, 0, &[9]), 500);
        let stats = a.end_cow_snapshot();
        assert_eq!(stats.copied_regions, 2);
        assert_eq!(stats.copied_bytes, 1500);
        assert!(!a.cow_snapshot_active());
        // The frozen snapshot still sees pre-fork bytes.
        assert_eq!(snap.read(id1, 0, 1), vec![1]);
        assert_eq!(snap.read(id2, 0, 1), vec![2]);
    }

    #[test]
    fn cow_ledger_ignores_shared_segments_and_unshared_regions() {
        let mut a = AddressSpace::new();
        let shm = a.map(
            "shm",
            RegionKind::Shm {
                backing: "/tmp/seg".into(),
            },
            PROT_R | PROT_W,
            Content::Shared(Rc::new(RefCell::new(vec![0u8; 64]))),
        );
        let snap = a.begin_cow_snapshot();
        // MAP_SHARED writes are never COW copies…
        assert_eq!(a.write(shm, 0, &[7]), 0);
        // …and they are visible through the snapshot (UNIX fork semantics).
        assert_eq!(snap.read(shm, 0, 1), vec![7]);
        // A region mapped *after* the snapshot is not shared with it.
        let fresh = a.map(
            "fresh",
            RegionKind::Anon,
            PROT_R | PROT_W,
            Content::Real(Rc::new(vec![0u8; 32])),
        );
        assert_eq!(a.write(fresh, 0, &[1]), 0);
        let stats = a.end_cow_snapshot();
        assert_eq!(stats, CowStats::default());
    }

    #[test]
    fn end_cow_snapshot_is_idempotent() {
        let mut a = AddressSpace::new();
        assert_eq!(a.end_cow_snapshot(), CowStats::default());
    }

    #[test]
    fn shared_regions_alias_across_fork() {
        let mut a = AddressSpace::new();
        let seg = Rc::new(RefCell::new(vec![0u8; 64]));
        let id = a.map(
            "shm",
            RegionKind::Shm {
                backing: "/tmp/seg".into(),
            },
            PROT_R | PROT_W,
            Content::Shared(seg),
        );
        let mut b = a.fork_cow();
        b.write(id, 10, &[5]);
        assert_eq!(a.read(id, 10, 1), vec![5], "shared write visible to parent");
    }

    #[test]
    fn synthetic_read_matches_profile() {
        let mut a = AddressSpace::new();
        let id = a.map(
            "ballast",
            RegionKind::Anon,
            PROT_R,
            Content::Synthetic {
                seed: 4,
                len: 10_000,
                profile: FillProfile::Text,
            },
        );
        let direct = FillProfile::Text.bytes(4, 10_000);
        assert_eq!(a.read(id, 0, 10_000), direct);
        assert_eq!(a.read(id, 5_000, 100), direct[5_000..5_100].to_vec());
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn write_to_readonly_region_panics() {
        let mut a = AddressSpace::new();
        let id = a.map(
            "lib",
            RegionKind::Lib,
            PROT_R | PROT_X,
            Content::Real(Rc::new(vec![0u8; 16])),
        );
        a.write(id, 0, &[1]);
    }

    #[test]
    fn unmap_removes_from_iteration_and_totals() {
        let mut a = AddressSpace::new();
        let id1 = a.map(
            "x",
            RegionKind::Anon,
            PROT_R,
            Content::Real(Rc::new(vec![0; 10])),
        );
        let _id2 = a.map(
            "y",
            RegionKind::Anon,
            PROT_R,
            Content::Real(Rc::new(vec![0; 20])),
        );
        assert_eq!(a.total_bytes(), 30);
        a.unmap(id1);
        assert_eq!(a.total_bytes(), 20);
        assert_eq!(a.region_count(), 1);
        assert!(a.region(id1).is_none());
    }

    #[test]
    fn digests_distinguish_contents() {
        let real1 = Content::Real(Rc::new(vec![1, 2, 3]));
        let real2 = Content::Real(Rc::new(vec![1, 2, 4]));
        assert_ne!(real1.digest(), real2.digest());
        let syn = Content::Synthetic {
            seed: 1,
            len: 3,
            profile: FillProfile::Zeros,
        };
        let syn2 = Content::Synthetic {
            seed: 2,
            len: 3,
            profile: FillProfile::Zeros,
        };
        assert_ne!(syn.digest(), syn2.digest());
    }

    /// Build an address space with `n` writable real regions for the
    /// dirty-bitmap property tests.
    fn space_with_regions(n: usize) -> (AddressSpace, Vec<RegionId>) {
        let mut a = AddressSpace::new();
        let ids = (0..n)
            .map(|i| {
                a.map(
                    format!("r{i}"),
                    RegionKind::Anon,
                    PROT_R | PROT_W,
                    Content::Real(Rc::new(vec![i as u8; 256])),
                )
            })
            .collect();
        (a, ids)
    }

    #[test]
    fn dirty_bitmap_marks_exactly_the_written_regions() {
        // Property: over random write patterns, the dirty set equals the
        // set of regions actually written — no false positives from reads,
        // no misses.
        for seed in 0..16u64 {
            let mut rng = simkit::DetRng::seed_from_u64(0xd1_47_00 + seed);
            let (mut a, ids) = space_with_regions(8);
            a.enable_dirty_tracking();
            assert!(a.dirty_tracking_active());
            assert!(a.dirty_regions().unwrap().is_empty());
            let mut expect = BTreeSet::new();
            for _ in 0..rng.range(1, 40) {
                let id = ids[rng.below(ids.len() as u64) as usize];
                if rng.chance(0.5) {
                    let off = rng.below(250);
                    a.write(id, off, &[rng.next_u64() as u8]);
                    expect.insert(id);
                } else {
                    // Reads never dirty.
                    a.read(id, 0, 16);
                }
            }
            assert_eq!(a.dirty_regions(), Some(&expect), "seed {seed}");
        }
    }

    #[test]
    fn dirty_bitmap_tracks_map_shared_writes_and_new_mappings() {
        let mut a = AddressSpace::new();
        a.enable_dirty_tracking();
        // A region mapped after arming is dirty by definition (no prior
        // generation can alias it).
        let shm = a.map(
            "shm",
            RegionKind::Shm {
                backing: "/tmp/seg".into(),
            },
            PROT_R | PROT_W,
            Content::Shared(Rc::new(RefCell::new(vec![0u8; 64]))),
        );
        assert!(a.dirty_regions().unwrap().contains(&shm));
        a.take_dirty();
        // MAP_SHARED writes through *this* space mark the region even
        // though no COW copy happens.
        a.write(shm, 3, &[9]);
        assert_eq!(
            a.dirty_regions()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![shm]
        );
        // Unmap drops the id from the set — a dead region is never captured.
        a.unmap(shm);
        assert!(a.dirty_regions().unwrap().is_empty());
    }

    #[test]
    fn dirty_bitmap_ignores_immutable_ballast() {
        // Synthetic ballast cannot be written (writes panic), so arming
        // tracking and reading it back leaves the set empty: ballast pages
        // are aliasable at every generation.
        let mut a = AddressSpace::new();
        let id = a.map(
            "ballast",
            RegionKind::Anon,
            PROT_R,
            Content::Synthetic {
                seed: 1,
                len: 1 << 20,
                profile: FillProfile::Random,
            },
        );
        a.enable_dirty_tracking();
        a.read(id, 4096, 4096);
        assert!(a.dirty_regions().unwrap().is_empty());
    }

    #[test]
    fn take_dirty_resets_only_on_consumption_not_on_rearm() {
        // The bitmap lifecycle the checkpointer depends on: re-arming
        // (which happens every generation, including ones that stop at
        // REFILLED) must NOT clear the set; only take_dirty — the
        // CKPT_WRITTEN/durable-commit point — swaps in a fresh one.
        let (mut a, ids) = space_with_regions(3);
        a.enable_dirty_tracking();
        a.write(ids[0], 0, &[1]);
        a.enable_dirty_tracking(); // re-arm = REFILLED without consumption
        assert!(
            a.dirty_regions().unwrap().contains(&ids[0]),
            "re-arming must keep the accumulated set"
        );
        let taken = a.take_dirty().unwrap();
        assert_eq!(taken.iter().copied().collect::<Vec<_>>(), vec![ids[0]]);
        // Tracking stays armed with a fresh set; later writes accumulate.
        assert!(a.dirty_tracking_active());
        assert!(a.dirty_regions().unwrap().is_empty());
        a.write(ids[1], 0, &[2]);
        assert!(a.dirty_regions().unwrap().contains(&ids[1]));
    }

    #[test]
    fn merge_dirty_unions_the_aborted_generations_set_back() {
        // Abort path: an image that never became durable must return its
        // consumed set, and writes made meanwhile must survive the union.
        let (mut a, ids) = space_with_regions(3);
        a.enable_dirty_tracking();
        a.write(ids[0], 0, &[1]);
        let taken = a.take_dirty().unwrap();
        a.write(ids[1], 0, &[2]); // dirtied during the doomed drain
        a.merge_dirty(taken);
        let got: Vec<_> = a.dirty_regions().unwrap().iter().copied().collect();
        assert_eq!(got, vec![ids[0], ids[1]]);
    }

    #[test]
    fn cow_faults_mark_the_live_side_only() {
        // A forked-checkpoint snapshot (and a plain fork child) starts
        // untracked; COW faults on the live side mark exactly the regions
        // whose sharing broke, and the frozen snapshot never observes them.
        let (mut a, ids) = space_with_regions(4);
        a.enable_dirty_tracking();
        a.take_dirty();
        let snap = a.begin_cow_snapshot();
        assert!(snap.dirty_regions().is_none(), "snapshot starts untracked");
        assert!(a.fork_cow().dirty_regions().is_none(), "child untracked");
        assert!(a.write(ids[2], 7, &[9]) > 0, "write breaks COW sharing");
        assert_eq!(
            a.dirty_regions()
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![ids[2]]
        );
        let stats = a.end_cow_snapshot();
        assert_eq!(stats.copied_regions, 1);
        assert_eq!(snap.read(ids[2], 7, 1), vec![2], "snapshot sees old byte");
    }

    #[test]
    fn addresses_are_page_aligned_and_disjoint() {
        let mut a = AddressSpace::new();
        let id1 = a.map(
            "x",
            RegionKind::Anon,
            PROT_R,
            Content::Real(Rc::new(vec![0; 5000])),
        );
        let id2 = a.map(
            "y",
            RegionKind::Anon,
            PROT_R,
            Content::Real(Rc::new(vec![0; 100])),
        );
        let r1 = a.region(id1).unwrap();
        let r2 = a.region(id2).unwrap();
        assert_eq!(r1.start % 4096, 0);
        assert_eq!(r2.start % 4096, 0);
        assert!(r2.start >= r1.start + 5000);
    }
}
