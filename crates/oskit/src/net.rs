//! Connections: TCP sockets, UNIX-domain sockets, socketpairs, and pipes
//! (which the kernel wrapper layer promotes to socketpairs, exactly as
//! DMTCP's `pipe` wrapper does — §4.5).
//!
//! Each connection has two directions; each direction models the sender's
//! view of "bytes accepted by the kernel" as `in_flight` (on the wire /
//! in the sender's kernel buffer) plus the receiver's kernel `recv_buf` of
//! *real bytes*. The DMTCP drain stage empties exactly these buffers, so
//! they must be faithful: byte streams are preserved bit-for-bit and
//! sequence-checked in tests.
//!
//! Data movement *timing* (NIC bandwidth, latency) is charged by the world
//! when it schedules delivery events; this module is the pure state.

use crate::world::{NodeId, Pid, Tid};
use std::collections::VecDeque;

/// Connection id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

/// What kind of byte stream this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnKind {
    /// TCP/IP socket (possibly cross-node).
    Tcp,
    /// UNIX domain socket (same node).
    Unix,
    /// `socketpair(2)`.
    SocketPair,
    /// A pipe, promoted to a socketpair by the wrapper layer. The flag is
    /// kept so `/proc`-style introspection and tests can see the promotion.
    Pipe,
}

/// One direction of a connection (from `ends[src]` to `ends[1-src]`).
#[derive(Debug, Default)]
pub struct DirState {
    /// Bytes accepted from the sender but not yet in `recv_buf`.
    pub in_flight: u64,
    /// Receiver-side kernel buffer (real bytes).
    pub recv_buf: VecDeque<u8>,
    /// Threads blocked reading this direction.
    pub read_waiters: Vec<(Pid, Tid)>,
    /// Threads blocked writing this direction (buffer full).
    pub write_waiters: Vec<(Pid, Tid)>,
    /// Total bytes ever sent (sequence checks in tests).
    pub tx_total: u64,
    /// Total bytes ever delivered into `recv_buf`.
    pub rx_total: u64,
}

impl DirState {
    /// Bytes currently buffered end-to-end (the drain stage must move all
    /// of this into user space).
    pub fn buffered(&self) -> u64 {
        self.in_flight + self.recv_buf.len() as u64
    }
}

/// Default kernel buffering per direction (send + receive windows). The
/// paper notes drained data "tends to be on the order of tens of kilobytes".
pub const CONN_CAPACITY: u64 = 64 * 1024;

/// A two-endpoint byte stream.
#[derive(Debug)]
pub struct Conn {
    /// Id.
    pub id: ConnId,
    /// Stream kind.
    pub kind: ConnKind,
    /// Node of each endpoint.
    pub node: [NodeId; 2],
    /// Per-direction state; `dirs[e]` carries bytes from end `e`.
    pub dirs: [DirState; 2],
    /// Live fd references per end (across all processes).
    pub end_refs: [u32; 2],
    /// Per-end `F_SETOWN` owner (0 = unset) — DMTCP's election scratchpad.
    pub owner_pid: [u32; 2],
    /// Per-direction buffering capacity.
    pub capacity: u64,
    /// An end that was `close`d for good (EOF for the peer).
    pub closed: [bool; 2],
    /// An end whose write side was shut down (`shutdown(SHUT_WR)`): the end
    /// can still read, the peer sees EOF once in-flight bytes drain.
    pub wr_closed: [bool; 2],
}

impl Conn {
    /// A fresh connection between `node_a` (end 0) and `node_b` (end 1).
    pub fn new(id: ConnId, kind: ConnKind, node_a: NodeId, node_b: NodeId) -> Self {
        Conn {
            id,
            kind,
            node: [node_a, node_b],
            dirs: [DirState::default(), DirState::default()],
            end_refs: [0, 0],
            owner_pid: [0, 0],
            capacity: CONN_CAPACITY,
            closed: [false, false],
            wr_closed: [false, false],
        }
    }

    /// How many more bytes end `e` may send before blocking.
    pub fn send_room(&self, e: usize) -> u64 {
        self.capacity.saturating_sub(self.dirs[e].buffered())
    }

    /// Whether the connection crosses nodes.
    pub fn cross_node(&self) -> bool {
        self.node[0] != self.node[1]
    }

    /// Peer endpoint index.
    pub fn peer(e: usize) -> usize {
        1 - e
    }
}

/// A pending, not-yet-accepted connection on a listener.
#[derive(Debug, Clone, Copy)]
pub struct PendingConn {
    /// The connection (already constructed; the acceptor claims end 1).
    pub conn: ConnId,
}

/// A listening TCP socket bound to `(node, port)`.
#[derive(Debug)]
pub struct Listener {
    /// Id.
    pub id: crate::fdtable::ListenerId,
    /// Node it is bound on.
    pub node: NodeId,
    /// Bound port.
    pub port: u16,
    /// Completed connections waiting for `accept`.
    pub backlog: VecDeque<PendingConn>,
    /// Threads blocked in `accept`.
    pub accept_waiters: Vec<(Pid, Tid)>,
    /// Live fd references.
    pub refs: u32,
    /// `F_SETOWN` owner.
    pub owner_pid: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::NodeId;

    #[test]
    fn send_room_shrinks_with_buffered_bytes() {
        let mut c = Conn::new(ConnId(1), ConnKind::Tcp, NodeId(0), NodeId(1));
        assert_eq!(c.send_room(0), CONN_CAPACITY);
        c.dirs[0].in_flight = 1000;
        c.dirs[0].recv_buf.extend(std::iter::repeat_n(0u8, 500));
        assert_eq!(c.send_room(0), CONN_CAPACITY - 1500);
        assert_eq!(c.dirs[0].buffered(), 1500);
        // The opposite direction is unaffected.
        assert_eq!(c.send_room(1), CONN_CAPACITY);
    }

    #[test]
    fn peer_index() {
        assert_eq!(Conn::peer(0), 1);
        assert_eq!(Conn::peer(1), 0);
    }

    #[test]
    fn cross_node_detection() {
        let c = Conn::new(ConnId(1), ConnKind::Tcp, NodeId(2), NodeId(2));
        assert!(!c.cross_node());
        let d = Conn::new(ConnId(2), ConnKind::Tcp, NodeId(0), NodeId(3));
        assert!(d.cross_node());
    }
}
