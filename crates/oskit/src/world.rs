//! The world: nodes, object tables, scheduler, and lifecycle.
//!
//! `World` owns every kernel object; `Sim<World>` (aliased [`OsSim`]) drives
//! it. Threads are stepped by `dispatch` events; programs return a
//! `Step` value that tells the scheduler when to step them
//! next. Suspension (`MTCP`'s stage 2) is a per-process flag: a dispatch
//! that lands on a suspended user thread parks itself in the process's
//! resume queue, so no application code — and therefore no memory write —
//! can run while an image is being captured.

use crate::fdtable::{FdEntry, FdObject, ListenerId, OpenFile, OpenFileId};
use crate::fs::{Fs, SHARED_MOUNT};
use crate::kernel::Kernel;
use crate::net::{Conn, ConnId, Listener};
use crate::proc::{sig, ProcState, Process, SigAction, ThreadState};
use crate::program::{Program, Registry, Step, Tombstone};
use crate::pty::{Pty, PtyId};
use crate::spec::HwSpec;
use simkit::resource::{CachedDisk, CorePool, Pipe};
use simkit::rng::DetRng;
use simkit::trace::Trace;
use simkit::{Nanos, Sim};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Node index within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

/// Thread id (process-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tid(pub u32);

impl simkit::Snap for Pid {
    fn save(&self, w: &mut simkit::SnapWriter) {
        w.put_varint(self.0 as u64);
    }
    fn load(r: &mut simkit::SnapReader<'_>) -> Result<Self, simkit::SnapError> {
        Ok(Pid(
            u32::try_from(r.get_varint()?).map_err(|_| simkit::SnapError::Eof)?
        ))
    }
}

impl simkit::Snap for NodeId {
    fn save(&self, w: &mut simkit::SnapWriter) {
        w.put_varint(self.0 as u64);
    }
    fn load(r: &mut simkit::SnapReader<'_>) -> Result<Self, simkit::SnapError> {
        Ok(NodeId(
            u32::try_from(r.get_varint()?).map_err(|_| simkit::SnapError::Eof)?,
        ))
    }
}

/// The simulator type driving a [`World`].
pub type OsSim = Sim<World>;

/// Scheduler quantum between `Yield` steps.
pub const QUANTUM: Nanos = Nanos(1_000); // 1 µs

/// One cluster node.
pub struct Node {
    /// Id.
    pub id: NodeId,
    /// Hostname (`node00`, `node01`, …).
    pub hostname: String,
    /// CPU cores (charged for compute and compression).
    pub cpu: CorePool,
    /// Local disk behind a page cache.
    pub disk: CachedDisk,
    /// NIC transmit path.
    pub nic_tx: Pipe,
    /// Local filesystem.
    pub fs: Fs,
    next_port: u16,
}

/// Hook invoked on every process creation — the checkpoint layer installs
/// one to propagate its injection across `fork`/`exec`/`ssh`, exactly as
/// `LD_PRELOAD` + the exec/ssh wrappers do for real DMTCP. The hook may
/// re-key the process to a different pid (the conflict-detecting fork
/// wrapper of §4.5) and must return the pid the process ended up with.
pub type SpawnHook = Rc<dyn Fn(&mut World, &mut OsSim, Pid) -> Pid>;

/// A network transmission about to be scheduled, as seen by a fault hook.
/// Borrowed snapshot only — the hook cannot touch the world, which keeps
/// the interposition point re-entrancy-free.
pub struct NetPacket<'a> {
    /// Connection carrying the bytes.
    pub cid: ConnId,
    /// Sending end (0 or 1).
    pub end: usize,
    /// Payload being transmitted.
    pub bytes: &'a [u8],
    /// Virtual time of the send.
    pub now: Nanos,
    /// Arrival time the kernel computed (NIC + latency).
    pub arrival: Nanos,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
}

/// Verdict a network fault hook returns for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Deliver normally at the computed arrival time.
    Deliver,
    /// Deliver, but no earlier than the given instant (delay / reorder /
    /// partition faults). Clamped to `max(arrival, now)`.
    DeliverAt(Nanos),
    /// Silently lose the packet (the bytes were consumed from the sender's
    /// buffer, exactly like a lost TCP segment before the ack).
    Drop,
}

/// Hook consulted on every [`World::conn_transmit`] call. Installed by
/// fault-injection layers (see `crates/faultkit`); `None` means the network
/// is perfectly reliable, which is the default.
pub type NetFaultHook = Box<dyn FnMut(&NetPacket<'_>) -> NetFault>;

/// Hook consulted when a checkpoint image blob is about to be committed to
/// the filesystem. May mutate the blob (truncate, flip bits) to model a
/// torn write; returns `true` if it injected a fault.
pub type ImageFaultHook = Box<dyn FnMut(&str, &mut crate::fs::Blob) -> bool>;

/// The simulated cluster.
pub struct World {
    /// Hardware calibration.
    pub spec: HwSpec,
    /// Nodes.
    pub nodes: Vec<Node>,
    /// Live and zombie processes.
    pub procs: BTreeMap<Pid, Process>,
    /// Connections.
    pub conns: BTreeMap<ConnId, Conn>,
    /// Listening sockets.
    pub listeners: BTreeMap<ListenerId, Listener>,
    /// Pseudo-terminals.
    pub ptys: BTreeMap<PtyId, Pty>,
    /// System open-file table.
    pub open_files: BTreeMap<OpenFileId, OpenFile>,
    /// Cluster-shared filesystem mounted at [`SHARED_MOUNT`].
    pub shared_fs: Fs,
    /// SAN fabric shared by the first `spec.san_nodes` nodes.
    pub san: Pipe,
    /// NFS server used by the remaining nodes for shared storage.
    pub nfs: Pipe,
    /// Shared-memory segments keyed by (node, backing path): live bytes
    /// aliased by every mapper on that node.
    pub shm_segs: BTreeMap<(NodeId, String), Rc<RefCell<Vec<u8>>>>,
    /// Program registry (the "executables on disk").
    pub registry: Registry,
    /// Protocol trace for tests.
    pub trace: Trace,
    /// Observability layer: virtual-time spans and a metrics registry.
    /// Metrics are always recorded; span capture is opt-in
    /// (`obs.spans.set_enabled(true)`).
    pub obs: obs::Obs,
    /// World-level deterministic RNG.
    pub rng: DetRng,
    /// Process-creation hook (checkpoint-layer injection).
    pub spawn_hook: Option<SpawnHook>,
    /// Network fault-injection hook (see [`NetFaultHook`]).
    pub net_fault: Option<NetFaultHook>,
    /// Checkpoint-image fault-injection hook (see [`ImageFaultHook`]).
    pub image_fault: Option<ImageFaultHook>,
    /// Named extension slots for layers built on top of the kernel (the
    /// DMTCP crate keeps its wrapper side tables here). Opaque to oskit.
    pub ext_slots: BTreeMap<String, Box<dyn std::any::Any>>,
    next_pid: u32,
    next_conn: u64,
    next_listener: u64,
    next_pty: u32,
    next_open_file: u64,
}

impl World {
    /// A cluster of `node_count` nodes with the given hardware and programs.
    pub fn new(spec: HwSpec, node_count: usize, registry: Registry) -> Self {
        let nodes = (0..node_count)
            .map(|i| Node {
                id: NodeId(i as u32),
                hostname: format!("node{i:02}"),
                cpu: CorePool::new(spec.cores_per_node),
                disk: CachedDisk::new(
                    spec.disk_cache_bps,
                    spec.disk_platter_bps,
                    spec.disk_cache_window.min(spec.ram_bytes / 2),
                ),
                nic_tx: Pipe::new(spec.nic_bps),
                fs: Fs::new(),
                next_port: 20_000,
            })
            .collect();
        World {
            san: Pipe::new(spec.san_bps),
            nfs: Pipe::with_overhead(spec.nfs_bps, spec.nfs_overhead),
            spec,
            nodes,
            procs: BTreeMap::new(),
            conns: BTreeMap::new(),
            listeners: BTreeMap::new(),
            ptys: BTreeMap::new(),
            open_files: BTreeMap::new(),
            shared_fs: Fs::new(),
            shm_segs: BTreeMap::new(),
            registry,
            trace: Trace::disabled(),
            obs: obs::Obs::new(),
            rng: DetRng::seed_from_u64(0xD317C9),
            spawn_hook: None,
            net_fault: None,
            image_fault: None,
            ext_slots: BTreeMap::new(),
            next_pid: 2,
            next_conn: 1,
            next_listener: 1,
            next_pty: 0,
            next_open_file: 1,
        }
    }

    /// Resolve a hostname to a node.
    pub fn resolve(&self, host: &str) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.hostname == host).map(|n| n.id)
    }

    /// Ports with a live listening socket bound on `node`. Re-binding an
    /// address on a target node (restart onto a different topology, live
    /// migration) must avoid these, exactly as a real `bind` would fail
    /// with `EADDRINUSE`.
    pub fn ports_in_use(&self, node: NodeId) -> std::collections::BTreeSet<u16> {
        self.listeners
            .values()
            .filter(|l| l.node == node)
            .map(|l| l.port)
            .collect()
    }

    /// Live processes hosted on `node`, in pid order.
    pub fn procs_on(&self, node: NodeId) -> Vec<Pid> {
        self.procs
            .values()
            .filter(|p| p.alive() && p.node == node)
            .map(|p| p.pid)
            .collect()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.0 as usize]
    }

    /// Allocate a pid with wraparound (so pid reuse — and therefore DMTCP's
    /// virtual-pid conflicts — genuinely occur).
    pub fn alloc_pid(&mut self) -> Pid {
        // Bound the scan to one full lap: a table with no free pid must fail
        // loudly (the kernel's fork would return EAGAIN), not spin forever.
        for _ in 0..self.spec.pid_max {
            let candidate = self.next_pid;
            self.next_pid += 1;
            if self.next_pid >= self.spec.pid_max {
                self.next_pid = 2;
            }
            if !self.procs.contains_key(&Pid(candidate)) {
                return Pid(candidate);
            }
        }
        panic!(
            "pid table full: {} live processes, pid_max {}",
            self.procs.len(),
            self.spec.pid_max
        );
    }

    /// Allocate an ephemeral port on `node`.
    pub fn alloc_port(&mut self, node: NodeId) -> u16 {
        let n = self.node_mut(node);
        let p = n.next_port;
        n.next_port += 1;
        p
    }

    // ------------------------------------------------------------------
    // Process lifecycle
    // ------------------------------------------------------------------

    /// Create a process on `node` running `prog`; schedules its first step.
    pub fn spawn(
        &mut self,
        sim: &mut OsSim,
        node: NodeId,
        cmd: impl Into<String>,
        prog: Box<dyn Program>,
        ppid: Pid,
        env: BTreeMap<String, String>,
    ) -> Pid {
        let pid = self.alloc_pid();
        let mut p = Process::new(pid, ppid, node, cmd.into(), prog);
        p.env = env;
        self.procs.insert(pid, p);
        let pid = self.run_spawn_hook(sim, pid);
        self.obs_note_process(pid);
        self.schedule_dispatch(sim, pid, Tid(0));
        pid
    }

    /// (Re-)register a process's display name with the observability layer,
    /// keyed by (node, virtual pid) — the identity Perfetto tracks use.
    pub fn obs_note_process(&mut self, pid: Pid) {
        let Some(p) = self.procs.get(&pid) else {
            return;
        };
        let vpid = p.virt_pid.unwrap_or(p.pid.0);
        let name = format!("{} {}", self.nodes[p.node.0 as usize].hostname, p.cmd);
        self.obs.set_process_name(p.node.0, vpid, name);
    }

    /// Invoke the checkpoint layer's injection hook for a new process;
    /// returns the (possibly re-keyed) pid.
    pub fn run_spawn_hook(&mut self, sim: &mut OsSim, pid: Pid) -> Pid {
        if let Some(hook) = self.spawn_hook.clone() {
            hook(self, sim, pid)
        } else {
            pid
        }
    }

    /// Move a process to a fresh pid (used by the fork wrapper when the
    /// kernel-assigned pid collides with a live virtual pid). Must be
    /// called before the process's first dispatch.
    pub fn rekey_pid(&mut self, old: Pid) -> Pid {
        let new = self.alloc_pid();
        let mut p = self.procs.remove(&old).expect("rekey of unknown pid");
        assert!(
            p.threads.iter().all(|t| !t.dispatch_pending),
            "rekey after dispatch was scheduled"
        );
        p.pid = new;
        self.procs.insert(new, p);
        new
    }

    /// Fork `parent`: COW address space, inherited fd table (with reference
    /// counts bumped), single thread continuing from `child_main`.
    pub fn fork_process(
        &mut self,
        sim: &mut OsSim,
        parent: Pid,
        child_main: Box<dyn Program>,
    ) -> Pid {
        let pid = self.alloc_pid();
        let (node, mem, fd_entries, env, ctty, pid_map) = {
            let p = self.procs.get(&parent).expect("fork of dead process");
            (
                p.node,
                p.mem.fork_cow(),
                p.fds.clone_entries(),
                p.env.clone(),
                p.ctty,
                p.pid_map.clone(),
            )
        };
        let mut child = Process::new(
            pid,
            parent,
            node,
            {
                let p = &self.procs[&parent];
                p.cmd.clone()
            },
            child_main,
        );
        child.mem = mem;
        child.env = env;
        child.ctty = ctty;
        child.pid_map = pid_map;
        child.threads[0].fork_ret = Some(0);
        for (fd, entry) in fd_entries {
            child.fds.install_at(fd, entry);
            self.retain_obj(entry.obj);
        }
        self.procs.insert(pid, child);
        let pid = self.run_spawn_hook(sim, pid);
        self.obs_note_process(pid);
        self.schedule_dispatch(sim, pid, Tid(0));
        pid
    }

    /// Terminate a whole process: mark threads exited, release every fd,
    /// turn it into a zombie, wake `waitpid` waiters, signal the parent.
    pub fn exit_process(&mut self, sim: &mut OsSim, pid: Pid, code: i32) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        if !p.alive() {
            return;
        }
        for t in &mut p.threads {
            t.state = ThreadState::Exited;
        }
        p.state = ProcState::Zombie(code);
        let ppid = p.ppid;
        let waiters = std::mem::take(&mut p.wait_waiters);
        let fds: Vec<FdEntry> = p.fds.clone_entries().iter().map(|(_, e)| *e).collect();
        let ctty = p.ctty.take();
        for e in fds {
            self.release_obj(sim, e.obj);
        }
        if let Some(pty_id) = ctty {
            if let Some(pty) = self.ptys.get_mut(&pty_id) {
                if pty.controlling_pid == Some(pid) {
                    pty.controlling_pid = None;
                }
            }
        }
        self.wake_all(sim, waiters);
        self.signal(sim, ppid, sig::SIGCHLD);
        self.trace
            .emit_with(sim.now(), "exit", || format!("pid {} code {code}", pid.0));
    }

    /// Destroy a process record entirely (post-reap, or kill -9 of a whole
    /// computation when simulating failure).
    pub fn reap(&mut self, pid: Pid) -> Option<i32> {
        let p = self.procs.get(&pid)?;
        if let ProcState::Zombie(code) = p.state {
            self.procs.remove(&pid);
            Some(code)
        } else {
            None
        }
    }

    /// Deliver a signal.
    pub fn signal(&mut self, sim: &mut OsSim, pid: Pid, signum: u8) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        if !p.alive() {
            return;
        }
        let action = p
            .sig_actions
            .get(&signum)
            .copied()
            .unwrap_or(SigAction::Default);
        match (signum, action) {
            (sig::SIGKILL, _) => self.exit_process(sim, pid, 137),
            (sig::SIGTERM, SigAction::Default) => self.exit_process(sim, pid, 143),
            (_, SigAction::Handler) => {
                p.pending_signals.push_back(signum);
                // Kick the main thread so the handler runs promptly.
                let tid = p.threads[0].tid;
                if p.threads[0].state == ThreadState::Blocked {
                    self.wake(sim, (pid, tid));
                } else {
                    self.schedule_dispatch(sim, pid, tid);
                }
            }
            _ => {} // Default-ignore for everything else in this model.
        }
    }

    // ------------------------------------------------------------------
    // Scheduler
    // ------------------------------------------------------------------

    /// Queue a dispatch event for `(pid, tid)` at the current time.
    pub fn schedule_dispatch(&mut self, sim: &mut OsSim, pid: Pid, tid: Tid) {
        self.schedule_dispatch_at(sim, pid, tid, sim.now());
    }

    /// Queue a dispatch event at an absolute time.
    pub fn schedule_dispatch_at(&mut self, sim: &mut OsSim, pid: Pid, tid: Tid, at: Nanos) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        let Some(t) = p.thread_mut(tid) else {
            return;
        };
        if t.dispatch_pending || t.state == ThreadState::Exited {
            return;
        }
        t.dispatch_pending = true;
        // Keyed fast path: the dispatcher fires once per quantum per
        // runnable thread, so boxing a closure here would be the single
        // hottest allocation in the whole simulation.
        sim.at_keyed(at, ((pid.0 as u64) << 32) | tid.0 as u64, dispatch_keyed);
    }

    /// Wake one blocked thread (or ensure a runnable one gets stepped).
    pub fn wake(&mut self, sim: &mut OsSim, who: (Pid, Tid)) {
        let (pid, tid) = who;
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        let Some(t) = p.thread_mut(tid) else {
            return;
        };
        if t.state == ThreadState::Blocked {
            t.state = ThreadState::Runnable;
        }
        self.schedule_dispatch(sim, pid, tid);
    }

    /// Wake a list of waiters.
    pub fn wake_all(&mut self, sim: &mut OsSim, waiters: Vec<(Pid, Tid)>) {
        for who in waiters {
            self.wake(sim, who);
        }
    }

    /// Freeze user threads of `pid` (checkpoint stage 2). Manager threads
    /// (`user == false`) keep running.
    pub fn suspend_user_threads(&mut self, sim: &mut OsSim, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.user_suspended = true;
            self.trace
                .emit_with(sim.now(), "suspend", || format!("pid {}", pid.0));
        }
    }

    /// Thaw user threads (checkpoint stage 7 / restart stage 7).
    pub fn resume_user_threads(&mut self, sim: &mut OsSim, pid: Pid) {
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        p.user_suspended = false;
        let to_run: Vec<Tid> = p
            .threads
            .iter()
            .filter(|t| t.user && t.state == ThreadState::Runnable && !t.dispatch_pending)
            .map(|t| t.tid)
            .collect();
        for tid in to_run {
            self.schedule_dispatch(sim, pid, tid);
        }
        self.trace
            .emit_with(sim.now(), "resume", || format!("pid {}", pid.0));
    }

    // ------------------------------------------------------------------
    // Object reference counting
    // ------------------------------------------------------------------

    /// Bump the reference count behind an fd entry (dup/fork inheritance).
    pub fn retain_obj(&mut self, obj: FdObject) {
        match obj {
            FdObject::File(id) => {
                self.open_files
                    .get_mut(&id)
                    .expect("dangling file ref")
                    .refs += 1;
            }
            FdObject::Sock(cid, end) => {
                self.conns
                    .get_mut(&cid)
                    .expect("dangling conn ref")
                    .end_refs[end as usize] += 1;
            }
            FdObject::Listener(lid) => {
                self.listeners
                    .get_mut(&lid)
                    .expect("dangling listener ref")
                    .refs += 1;
            }
            FdObject::PtyMaster(pid) => {
                self.ptys
                    .get_mut(&pid)
                    .expect("dangling pty ref")
                    .master_refs += 1;
            }
            FdObject::PtySlave(pid) => {
                self.ptys
                    .get_mut(&pid)
                    .expect("dangling pty ref")
                    .slave_refs += 1;
            }
        }
    }

    /// Drop one reference; performs close semantics when it hits zero
    /// (EOF to socket peers, listener teardown, pty side closure).
    pub fn release_obj(&mut self, sim: &mut OsSim, obj: FdObject) {
        match obj {
            FdObject::File(id) => {
                let f = self.open_files.get_mut(&id).expect("dangling file ref");
                f.refs -= 1;
                if f.refs == 0 {
                    self.open_files.remove(&id);
                }
            }
            FdObject::Sock(cid, end) => {
                let c = self.conns.get_mut(&cid).expect("dangling conn ref");
                let e = end as usize;
                c.end_refs[e] -= 1;
                if c.end_refs[e] == 0 {
                    c.closed[e] = true;
                    // Readers of the direction *from* this end see EOF once
                    // buffered bytes run out; wake them to observe it.
                    let readers = std::mem::take(&mut c.dirs[e].read_waiters);
                    // Writers toward this end will now get EPIPE.
                    let writers = std::mem::take(&mut c.dirs[Conn::peer(e)].write_waiters);
                    let gone = c.closed[0] && c.closed[1];
                    if gone {
                        self.conns.remove(&cid);
                    }
                    self.wake_all(sim, readers);
                    self.wake_all(sim, writers);
                }
            }
            FdObject::Listener(lid) => {
                let l = self.listeners.get_mut(&lid).expect("dangling listener ref");
                l.refs -= 1;
                if l.refs == 0 {
                    let waiters = std::mem::take(&mut l.accept_waiters);
                    self.listeners.remove(&lid);
                    self.wake_all(sim, waiters);
                }
            }
            FdObject::PtyMaster(ptid) => {
                let p = self.ptys.get_mut(&ptid).expect("dangling pty ref");
                p.master_refs -= 1;
                if p.master_refs == 0 {
                    let waiters = std::mem::take(&mut p.slave_read_waiters);
                    self.wake_all(sim, waiters);
                }
                self.gc_pty(ptid);
            }
            FdObject::PtySlave(ptid) => {
                let p = self.ptys.get_mut(&ptid).expect("dangling pty ref");
                p.slave_refs -= 1;
                if p.slave_refs == 0 {
                    let waiters = std::mem::take(&mut p.master_read_waiters);
                    self.wake_all(sim, waiters);
                }
                self.gc_pty(ptid);
            }
        }
    }

    fn gc_pty(&mut self, id: PtyId) {
        if let Some(p) = self.ptys.get(&id) {
            if p.master_refs == 0 && p.slave_refs == 0 {
                self.ptys.remove(&id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Allocation of kernel objects
    // ------------------------------------------------------------------

    /// Next connection id.
    pub fn alloc_conn_id(&mut self) -> ConnId {
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        id
    }

    /// Next listener id.
    pub fn alloc_listener_id(&mut self) -> ListenerId {
        let id = ListenerId(self.next_listener);
        self.next_listener += 1;
        id
    }

    /// Next pty id.
    pub fn alloc_pty_id(&mut self) -> PtyId {
        let id = PtyId(self.next_pty);
        self.next_pty += 1;
        id
    }

    /// Next open-file id.
    pub fn alloc_open_file_id(&mut self) -> OpenFileId {
        let id = OpenFileId(self.next_open_file);
        self.next_open_file += 1;
        id
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /// Move `bytes` from end `e` of `conn` toward the peer: accounts
    /// in-flight data, charges the NIC, and schedules the delivery event.
    /// The caller has already verified there is room.
    pub fn conn_transmit(&mut self, sim: &mut OsSim, cid: ConnId, e: usize, bytes: Vec<u8>) {
        let now = sim.now();
        let n = bytes.len() as u64;
        let (mut arrival, cross) = {
            let conn = self.conns.get(&cid).expect("transmit on dead conn");
            let cross = conn.cross_node();
            let src = conn.node[e];
            let t = if cross {
                let done = self.nodes[src.0 as usize].nic_tx.transfer(now, n);
                done + self.spec.net_latency
            } else {
                now + Nanos::from_secs_f64(n as f64 / self.spec.loopback_bps)
                    + Nanos::from_micros(5)
            };
            (t, cross)
        };
        let natural_arrival = arrival;
        let mut dropped = false;
        if let Some(mut hook) = self.net_fault.take() {
            let verdict = {
                let conn = self.conns.get(&cid).expect("transmit on dead conn");
                let pkt = NetPacket {
                    cid,
                    end: e,
                    bytes: &bytes,
                    now,
                    arrival,
                    src: conn.node[e],
                    dst: conn.node[Conn::peer(e)],
                };
                hook(&pkt)
            };
            self.net_fault = Some(hook);
            match verdict {
                NetFault::Deliver => {}
                NetFault::DeliverAt(t) => arrival = arrival.max(t).max(now),
                NetFault::Drop => dropped = true,
            }
        }
        // Flight-recorder taps: one msg.send per transmit, a fault event
        // when the hook altered its fate, and (in the delivery closure
        // below) a msg.deliver caused by the send — the happens-before
        // edge replay divergence checking leans on.
        let mut send_id = None;
        if self.obs.journal.is_enabled() {
            let conn = self.conns.get(&cid).expect("transmit on dead conn");
            let nums = [
                ("conn", cid.0),
                ("end", e as u64),
                ("bytes", n),
                ("src", conn.node[e].0 as u64),
                ("dst", conn.node[Conn::peer(e)].0 as u64),
            ];
            if self.obs.journal.wants(obs::journal::CLASS_NET) {
                let tag = self.obs.journal.tag_bytes(&bytes);
                send_id = self.obs.journal.record(
                    now,
                    obs::journal::CLASS_NET,
                    "msg.send",
                    None,
                    &nums,
                    tag,
                );
            }
            if dropped {
                self.obs.journal.record(
                    now,
                    obs::journal::CLASS_FAULT,
                    "fault.net.drop",
                    send_id,
                    &nums,
                    "",
                );
            } else if arrival > natural_arrival {
                self.obs.journal.record(
                    now,
                    obs::journal::CLASS_FAULT,
                    "fault.net.delay",
                    send_id,
                    &[
                        ("conn", cid.0),
                        ("end", e as u64),
                        ("bytes", n),
                        ("delay_ns", arrival.0 - natural_arrival.0),
                    ],
                    "",
                );
            }
        }
        let conn = self.conns.get_mut(&cid).expect("transmit on dead conn");
        conn.dirs[e].in_flight += n;
        conn.dirs[e].tx_total += n;
        self.obs.metrics.add("oskit.net.tx_bytes", 0, n);
        let _ = cross;
        if dropped {
            self.obs.metrics.add("oskit.net.fault_dropped_bytes", 0, n);
            // The sender's bytes are gone (consumed from its buffer, like a
            // segment lost before the ack); only the in-flight accounting
            // unwinds at what would have been the arrival instant.
            sim.at(arrival, move |w: &mut World, _| {
                let Some(conn) = w.conns.get_mut(&cid) else {
                    return;
                };
                conn.dirs[e].in_flight -= n;
            });
            return;
        }
        sim.at(arrival, move |w: &mut World, sim| {
            let Some(conn) = w.conns.get_mut(&cid) else {
                return; // both ends closed mid-flight
            };
            let n = bytes.len() as u64;
            conn.dirs[e].in_flight -= n;
            conn.dirs[e].rx_total += n;
            conn.dirs[e].recv_buf.extend(bytes.iter().copied());
            if let Some(sid) = send_id {
                w.obs.journal.record(
                    sim.now(),
                    obs::journal::CLASS_NET,
                    "msg.deliver",
                    Some(sid),
                    &[("conn", cid.0), ("end", e as u64), ("bytes", n)],
                    "",
                );
            }
            let readers = std::mem::take(&mut conn.dirs[e].read_waiters);
            w.wake_all(sim, readers);
        });
    }

    /// Give the installed image fault hook (if any) a chance to corrupt a
    /// checkpoint image blob before it is committed to the filesystem.
    /// `now` is the virtual time of the write (journaled when a fault
    /// fires). Returns `true` if a fault was injected.
    pub fn apply_image_fault(
        &mut self,
        now: Nanos,
        path: &str,
        blob: &mut crate::fs::Blob,
    ) -> bool {
        let Some(mut hook) = self.image_fault.take() else {
            return false;
        };
        let hit = hook(path, blob);
        self.image_fault = Some(hook);
        if hit {
            self.obs.metrics.inc("oskit.fs.image_fault", 0);
            self.obs.journal.record(
                now,
                obs::journal::CLASS_FAULT,
                "fault.image",
                None,
                &[("bytes", blob.len())],
                path,
            );
        }
        hit
    }

    /// Charge a write of `bytes` to storage serving `path` on `node`;
    /// returns the completion time. `/shared/...` routes to the SAN for
    /// SAN-attached nodes and to the NFS server (plus the sender NIC) for
    /// the rest; anything else is the node-local cached disk.
    pub fn charge_storage_write(
        &mut self,
        now: Nanos,
        node: NodeId,
        path: &str,
        bytes: u64,
    ) -> Nanos {
        self.obs
            .metrics
            .add("oskit.storage.write_bytes", node.0 as u64, bytes);
        if path.starts_with(SHARED_MOUNT) {
            if (node.0 as usize) < self.spec.san_nodes {
                self.san.transfer(now, bytes)
            } else {
                let t = self.nodes[node.0 as usize].nic_tx.transfer(now, bytes);
                self.nfs.transfer(t, bytes)
            }
        } else {
            self.nodes[node.0 as usize].disk.write(now, bytes)
        }
    }

    /// Charge a read; same routing as writes.
    pub fn charge_storage_read(
        &mut self,
        now: Nanos,
        node: NodeId,
        path: &str,
        bytes: u64,
    ) -> Nanos {
        self.obs
            .metrics
            .add("oskit.storage.read_bytes", node.0 as u64, bytes);
        if path.starts_with(SHARED_MOUNT) {
            if (node.0 as usize) < self.spec.san_nodes {
                self.san.transfer(now, bytes)
            } else {
                let t = self.nfs.transfer(now, bytes);
                self.nodes[node.0 as usize].nic_tx.transfer(t, bytes)
            }
        } else {
            self.nodes[node.0 as usize].disk.read(now, bytes)
        }
    }

    /// The filesystem serving `path` for `node`.
    pub fn fs_for(&self, node: NodeId, path: &str) -> &Fs {
        if path.starts_with(SHARED_MOUNT) {
            &self.shared_fs
        } else {
            &self.nodes[node.0 as usize].fs
        }
    }

    /// Mutable access to the filesystem serving `path` for `node`.
    pub fn fs_for_mut(&mut self, node: NodeId, path: &str) -> &mut Fs {
        if path.starts_with(SHARED_MOUNT) {
            &mut self.shared_fs
        } else {
            &mut self.nodes[node.0 as usize].fs
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// `/proc/<pid>/maps`-style rendering.
    pub fn proc_maps(&self, pid: Pid) -> Option<String> {
        let p = self.procs.get(&pid)?;
        let mut out = String::new();
        for (_, r) in p.mem.iter() {
            use std::fmt::Write;
            let prot = format!(
                "{}{}{}",
                if r.prot & crate::mem::PROT_R != 0 {
                    "r"
                } else {
                    "-"
                },
                if r.prot & crate::mem::PROT_W != 0 {
                    "w"
                } else {
                    "-"
                },
                if r.prot & crate::mem::PROT_X != 0 {
                    "x"
                } else {
                    "-"
                },
            );
            writeln!(
                out,
                "{:012x}-{:012x} {prot} {}",
                r.start,
                r.start + r.len(),
                r.name
            )
            .expect("write to string");
        }
        Some(out)
    }

    /// Count of live (running) processes.
    pub fn live_procs(&self) -> usize {
        self.procs.values().filter(|p| p.alive()).count()
    }
}

/// [`dispatch`] behind a packed `(pid, tid)` key, shaped for
/// [`Sim::at_keyed`]'s zero-allocation event path.
fn dispatch_keyed(w: &mut World, sim: &mut OsSim, key: u64) {
    dispatch(w, sim, Pid((key >> 32) as u32), Tid(key as u32));
}

/// Step one thread. Free function so it can be scheduled as an event.
pub fn dispatch(w: &mut World, sim: &mut OsSim, pid: Pid, tid: Tid) {
    // Phase 1: decide whether to run, pull the program out.
    let (mut prog, signals) = {
        let Some(p) = w.procs.get_mut(&pid) else {
            return;
        };
        if !p.alive() {
            return;
        }
        let suspended = p.user_suspended;
        let Some(t) = p.thread_mut(tid) else {
            return;
        };
        t.dispatch_pending = false;
        if t.state != ThreadState::Runnable {
            return;
        }
        if suspended && t.user {
            // Parked: `resume_user_threads` re-dispatches runnable threads.
            return;
        }
        let prog = std::mem::replace(&mut t.program, Box::new(Tombstone));
        let signals: Vec<u8> = p.pending_signals.drain(..).collect();
        (prog, signals)
    };

    for s in signals {
        prog.on_signal(s);
    }

    // Flight-recorder tap: which thread the scheduler stepped. Off unless
    // the chatty CLASS_SCHED bit is enabled.
    if w.obs.journal.wants(obs::journal::CLASS_SCHED) {
        let node = w.procs.get(&pid).map(|p| p.node.0 as u64).unwrap_or(0);
        w.obs.journal.record(
            sim.now(),
            obs::journal::CLASS_SCHED,
            "sched.step",
            None,
            &[("node", node), ("pid", pid.0 as u64), ("tid", tid.0 as u64)],
            prog.tag(),
        );
    }

    // Phase 2: run one step with the kernel facade.
    let mut k = Kernel::new(w, sim, pid, tid);
    let step = prog.step(&mut k);
    let fx = k.take_fx();

    // Phase 3: put the program back (or its exec replacement) and apply the
    // step. The process may have died during the step (exit/kill).
    let Some(p) = w.procs.get_mut(&pid) else {
        return;
    };
    if let Some(t) = p.thread_mut(tid) {
        t.program = match fx.exec_to {
            Some(newp) => newp,
            None => prog,
        };
        if t.state == ThreadState::Exited {
            return;
        }
        match step {
            Step::Compute(units) => {
                let dur = Nanos::from_secs_f64(units as f64 / w.spec.core_ups);
                let node = p.node;
                let now = sim.now();
                let (_start, end) = w.nodes[node.0 as usize].cpu.run(now, dur);
                w.schedule_dispatch_at(sim, pid, tid, end);
            }
            Step::Yield => {
                let at = sim.now() + QUANTUM;
                w.schedule_dispatch_at(sim, pid, tid, at);
            }
            Step::Sleep(d) => {
                let at = sim.now() + d;
                w.schedule_dispatch_at(sim, pid, tid, at);
            }
            Step::Block => {
                if fx.wakes_registered == 0 {
                    panic!(
                        "thread {}:{} blocked without registering a waker (tag {})",
                        pid.0,
                        tid.0,
                        p.thread(tid).map(|t| t.program.tag()).unwrap_or("?")
                    );
                }
                let t = p.thread_mut(tid).expect("thread just seen");
                t.state = ThreadState::Blocked;
            }
            Step::ExitThread => {
                let t = p.thread_mut(tid).expect("thread just seen");
                t.state = ThreadState::Exited;
                if p.live_threads() == 0 {
                    w.exit_process(sim, pid, 0);
                }
            }
            Step::Exit(code) => {
                w.exit_process(sim, pid, code);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::impl_snap;

    struct CountDown {
        left: u64,
        done_flag: u64,
    }
    impl_snap!(struct CountDown { left, done_flag });
    impl Program for CountDown {
        fn step(&mut self, k: &mut Kernel<'_>) -> Step {
            if self.left == 0 {
                return Step::Exit(self.done_flag as i32);
            }
            self.left -= 1;
            let _ = k;
            Step::Compute(1_000_000) // 1 ms at default core speed
        }
        fn tag(&self) -> &'static str {
            "countdown"
        }
        fn save(&self) -> Vec<u8> {
            use simkit::Snap;
            self.to_snap_bytes()
        }
    }

    fn world() -> (World, OsSim) {
        (
            World::new(HwSpec::default(), 2, Registry::new()),
            Sim::new(),
        )
    }

    #[test]
    fn spawn_run_exit() {
        let (mut w, mut sim) = world();
        let pid = w.spawn(
            &mut sim,
            NodeId(0),
            "count",
            Box::new(CountDown {
                left: 5,
                done_flag: 42,
            }),
            Pid(1),
            BTreeMap::new(),
        );
        sim.run(&mut w);
        let p = &w.procs[&pid];
        assert_eq!(p.state, ProcState::Zombie(42));
        // 5 compute steps of 1 ms each.
        assert!(
            (sim.now().as_secs_f64() - 0.005).abs() < 1e-4,
            "now {:?}",
            sim.now()
        );
        assert_eq!(w.reap(pid), Some(42));
        assert!(w.procs.is_empty());
    }

    #[test]
    fn cores_serialize_excess_threads() {
        let (mut w, mut sim) = world();
        // 6 single-thread processes on a 4-core node, each 10 ms of compute.
        for _ in 0..6 {
            w.spawn(
                &mut sim,
                NodeId(0),
                "burn",
                Box::new(CountDown {
                    left: 10,
                    done_flag: 0,
                }),
                Pid(1),
                BTreeMap::new(),
            );
        }
        sim.run(&mut w);
        // 60 ms of work over 4 cores ⇒ ≥ 15 ms wall-clock.
        assert!(sim.now() >= Nanos::from_millis(15), "now {:?}", sim.now());
        assert!(sim.now() < Nanos::from_millis(25));
    }

    #[test]
    fn suspension_parks_user_threads_and_resume_restarts_them() {
        let (mut w, mut sim) = world();
        let pid = w.spawn(
            &mut sim,
            NodeId(0),
            "count",
            Box::new(CountDown {
                left: 100,
                done_flag: 7,
            }),
            Pid(1),
            BTreeMap::new(),
        );
        // Let it run 10 steps (≈10 ms), then freeze until t = 1 s.
        sim.run_until(&mut w, Nanos::from_millis(10));
        w.suspend_user_threads(&mut sim, pid);
        sim.at(Nanos::from_secs(1), move |w: &mut World, sim| {
            assert!(w.procs[&pid].alive(), "frozen process must not finish");
            w.resume_user_threads(sim, pid);
        });
        sim.run(&mut w);
        assert_eq!(w.procs[&pid].state, ProcState::Zombie(7));
        // Total runtime ≈ 1 s of freeze + the remaining ~90 ms of compute.
        assert!(sim.now() >= Nanos::from_millis(1080), "now {:?}", sim.now());
    }

    #[test]
    fn pid_allocation_wraps_and_skips_live() {
        let spec = HwSpec {
            pid_max: 6, // pids 2..5
            ..HwSpec::default()
        };
        let mut w = World::new(spec, 1, Registry::new());
        let a = w.alloc_pid();
        assert_eq!(a, Pid(2));
        // Occupy pid 3.
        let mut sim = Sim::new();
        let held = w.spawn(
            &mut sim,
            NodeId(0),
            "x",
            Box::new(CountDown {
                left: u64::MAX,
                done_flag: 0,
            }),
            Pid(1),
            BTreeMap::new(),
        );
        assert_eq!(held, Pid(3));
        // Exhaust the space twice; pid 3 must never be handed out again.
        for _ in 0..7 {
            assert_ne!(w.alloc_pid(), Pid(3));
        }
    }

    #[test]
    fn sigkill_terminates_sigterm_handler_delivers() {
        struct Trap {
            got: Rc<RefCell<Vec<u8>>>,
        }
        impl Program for Trap {
            fn step(&mut self, k: &mut Kernel<'_>) -> Step {
                k.block_forever();
                Step::Block
            }
            fn tag(&self) -> &'static str {
                "trap"
            }
            fn save(&self) -> Vec<u8> {
                Vec::new()
            }
            fn on_signal(&mut self, s: u8) {
                self.got.borrow_mut().push(s);
            }
        }
        let (mut w, mut sim) = world();
        let got = Rc::new(RefCell::new(Vec::new()));
        let pid = w.spawn(
            &mut sim,
            NodeId(0),
            "trap",
            Box::new(Trap { got: got.clone() }),
            Pid(1),
            BTreeMap::new(),
        );
        w.procs
            .get_mut(&pid)
            .unwrap()
            .sig_actions
            .insert(sig::SIGUSR1, SigAction::Handler);
        sim.run(&mut w);
        w.signal(&mut sim, pid, sig::SIGUSR1);
        sim.run(&mut w);
        assert_eq!(&*got.borrow(), &[sig::SIGUSR1]);
        assert!(w.procs[&pid].alive());
        w.signal(&mut sim, pid, sig::SIGKILL);
        sim.run(&mut w);
        assert_eq!(w.procs[&pid].state, ProcState::Zombie(137));
    }

    #[test]
    fn proc_maps_renders_regions() {
        let (mut w, mut sim) = world();
        let pid = w.spawn(
            &mut sim,
            NodeId(0),
            "m",
            Box::new(CountDown {
                left: 0,
                done_flag: 0,
            }),
            Pid(1),
            BTreeMap::new(),
        );
        use crate::mem::{Content, RegionKind, PROT_R};
        w.procs.get_mut(&pid).unwrap().mem.map(
            "libdemo.so",
            RegionKind::Lib,
            PROT_R,
            Content::Real(Rc::new(vec![0u8; 4096])),
        );
        let maps = w.proc_maps(pid).unwrap();
        assert!(maps.contains("libdemo.so"));
        assert!(maps.contains("r--"));
    }
}
