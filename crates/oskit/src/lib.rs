//! `oskit` — the simulated UNIX cluster that stands in for the Linux kernel.
//!
//! The real DMTCP manipulates kernel state through raw syscalls; this crate
//! provides that kernel as an explicit, deterministic object model driven by
//! `simkit`'s discrete-event engine. Everything the paper's checkpointer
//! must capture exists here with UNIX semantics:
//!
//! * nodes with cores, local disks (page-cache model), NICs, and shared
//!   SAN/NFS storage ([`spec`], [`fs`]),
//! * processes and threads with copy-on-write `fork`, `exec`, `ssh` remote
//!   spawn, signals, zombies and `waitpid` ([`proc`], [`world`]),
//! * address spaces made of real-byte and synthetic regions ([`mem`]),
//! * file-descriptor tables over a shared open-file table, TCP and UNIX
//!   sockets with kernel buffers and in-flight data, pipes, ptys with
//!   terminal modes, and `mmap` shared memory ([`fdtable`], [`net`],
//!   [`pty`]),
//! * a pid namespace with wraparound allocation, so virtual-pid conflicts
//!   after restart genuinely occur ([`world`]).
//!
//! Simulated application code implements [`program::Program`]: a poll-style
//! state machine whose *entire* control state serializes into its thread's
//! stack region. The checkpointer treats those bytes as opaque — the same
//! opacity a real stack has — which is what makes the DMTCP layer above
//! this crate genuinely transparent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dump;
pub mod fdtable;
pub mod fs;
pub mod kernel;
pub mod mem;
pub mod net;
pub mod proc;
pub mod program;
pub mod pty;
pub mod spec;
pub mod world;

pub use fdtable::{Fd, FdObject};
pub use kernel::{Errno, Kernel};
pub use mem::{AddressSpace, Content, FillProfile, Region, RegionKind};
pub use program::{Program, Registry, Step};
pub use spec::HwSpec;
pub use world::{NodeId, OsSim, Pid, Tid, World};
