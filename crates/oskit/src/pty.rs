//! Pseudo-terminals.
//!
//! A pty is a master/slave pair of byte queues plus terminal modes. DMTCP
//! restores ptys *before* sockets at restart (Figure 2 step 1), preserves
//! terminal modes, and tracks ownership of the controlling terminal; this
//! model carries exactly that state.

use crate::world::{Pid, Tid};
use std::collections::VecDeque;

/// Pty id; also determines the slave path `/dev/pts/<n>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PtyId(pub u32);

impl PtyId {
    /// The slave device path (`ptsname(3)`).
    pub fn slave_path(&self) -> String {
        format!("/dev/pts/{}", self.0)
    }
}

/// Terminal modes — the subset checkpoint/restore must preserve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Termios {
    /// Canonical (line-buffered) mode.
    pub canonical: bool,
    /// Echo input back.
    pub echo: bool,
    /// Translate NL to CR-NL on output.
    pub onlcr: bool,
    /// Rows of the winsize.
    pub rows: u16,
    /// Columns of the winsize.
    pub cols: u16,
}

impl Default for Termios {
    fn default() -> Self {
        Termios {
            canonical: true,
            echo: true,
            onlcr: true,
            rows: 24,
            cols: 80,
        }
    }
}

simkit::impl_snap!(struct Termios { canonical, echo, onlcr, rows, cols });

/// One pseudo-terminal pair.
#[derive(Debug)]
pub struct Pty {
    /// Id (names the slave path).
    pub id: PtyId,
    /// Bytes written by master, read by slave (keyboard direction).
    pub to_slave: VecDeque<u8>,
    /// Bytes written by slave, read by master (display direction).
    pub to_master: VecDeque<u8>,
    /// Terminal modes.
    pub termios: Termios,
    /// Live master fd references.
    pub master_refs: u32,
    /// Live slave fd references.
    pub slave_refs: u32,
    /// Session leader owning this as its controlling terminal.
    pub controlling_pid: Option<Pid>,
    /// Threads blocked reading the slave side.
    pub slave_read_waiters: Vec<(Pid, Tid)>,
    /// Threads blocked reading the master side.
    pub master_read_waiters: Vec<(Pid, Tid)>,
}

impl Pty {
    /// A fresh pty.
    pub fn new(id: PtyId) -> Self {
        Pty {
            id,
            to_slave: VecDeque::new(),
            to_master: VecDeque::new(),
            termios: Termios::default(),
            master_refs: 0,
            slave_refs: 0,
            controlling_pid: None,
            slave_read_waiters: Vec::new(),
            master_read_waiters: Vec::new(),
        }
    }

    /// Write from the master side (applies no output processing — input
    /// processing such as echo is handled by the kernel facade so waiters
    /// can be woken there).
    pub fn master_write(&mut self, bytes: &[u8]) {
        self.to_slave.extend(bytes);
    }

    /// Write from the slave side, applying `onlcr` translation.
    pub fn slave_write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            if b == b'\n' && self.termios.onlcr {
                self.to_master.push_back(b'\r');
            }
            self.to_master.push_back(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slave_path_matches_ptsname_convention() {
        assert_eq!(PtyId(3).slave_path(), "/dev/pts/3");
    }

    #[test]
    fn onlcr_translates_newlines() {
        let mut p = Pty::new(PtyId(0));
        p.slave_write(b"a\nb");
        assert_eq!(p.to_master.iter().copied().collect::<Vec<_>>(), b"a\r\nb");
        p.termios.onlcr = false;
        p.slave_write(b"\n");
        assert_eq!(p.to_master.pop_back(), Some(b'\n'));
        assert_ne!(p.to_master.pop_back(), Some(b'\r'));
    }

    #[test]
    fn master_write_is_raw() {
        let mut p = Pty::new(PtyId(0));
        p.master_write(b"ls\n");
        assert_eq!(p.to_slave.iter().copied().collect::<Vec<_>>(), b"ls\n");
    }

    #[test]
    fn termios_snap_roundtrip() {
        use simkit::Snap;
        let t = Termios {
            canonical: false,
            echo: false,
            onlcr: true,
            rows: 50,
            cols: 132,
        };
        assert_eq!(Termios::from_snap_bytes(&t.to_snap_bytes()).unwrap(), t);
    }
}
