//! Simulated filesystems.
//!
//! Each node has a local [`Fs`]; the world additionally holds one shared
//! [`Fs`] mounted at [`SHARED_MOUNT`] on every node (the paper's EMC SAN
//! reachable by 8 nodes over Fibre Channel and by the other 24 via NFS).
//! Path routing and I/O *timing* live in `world.rs`; this module is the pure
//! data model.
//!
//! File contents are [`Blob`]s: sequences of real-byte chunks and *virtual*
//! chunks. A virtual chunk contributes to the file's size and carries opaque
//! metadata for whoever wrote it — the checkpoint layer uses this to "write"
//! multi-gigabyte compressed payloads of synthetic memory without the host
//! materializing them. Ordinary files (scripts, tables, logs) are all-real
//! and support byte-accurate read-back.

use std::collections::{BTreeMap, BTreeSet};

/// Mount point of the cluster-shared filesystem.
pub const SHARED_MOUNT: &str = "/shared";

/// Root directory of a node's content-addressed checkpoint store. Kept here
/// (rather than in the store crate) so low-level layers — fault injection,
/// storage accounting — can recognize store traffic without a dependency on
/// the store itself.
pub const STORE_ROOT: &str = "/ckptstore";

/// One extent of file content.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// Literal bytes.
    Real(Vec<u8>),
    /// `len` bytes that were accounted but not materialized; `meta` is
    /// opaque to the filesystem (the checkpoint layer stores synthetic
    /// region recipes here).
    Virtual {
        /// Size contributed to the file.
        len: u64,
        /// Writer-defined payload describing how to regenerate the bytes.
        meta: Vec<u8>,
    },
}

impl Chunk {
    /// Size contributed to the containing file.
    pub fn len(&self) -> u64 {
        match self {
            Chunk::Real(b) => b.len() as u64,
            Chunk::Virtual { len, .. } => *len,
        }
    }

    /// True for zero-length chunks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// File content as an append-only chunk sequence.
#[derive(Debug, Clone, Default)]
pub struct Blob {
    chunks: Vec<Chunk>,
    len: u64,
}

impl Blob {
    /// An empty blob.
    pub fn new() -> Self {
        Blob::default()
    }

    /// A blob holding `bytes`.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        let mut b = Blob::new();
        b.append_bytes(&bytes);
        b
    }

    /// Total size in bytes (real + virtual).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the blob has no content.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append literal bytes (coalesces with a trailing real chunk).
    pub fn append_bytes(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.len += bytes.len() as u64;
        if let Some(Chunk::Real(last)) = self.chunks.last_mut() {
            last.extend_from_slice(bytes);
        } else {
            self.chunks.push(Chunk::Real(bytes.to_vec()));
        }
    }

    /// Append an accounted-but-unmaterialized extent.
    pub fn append_virtual(&mut self, len: u64, meta: Vec<u8>) {
        self.len += len;
        self.chunks.push(Chunk::Virtual { len, meta });
    }

    /// The chunk sequence.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// All bytes, if the blob is entirely real. `None` if any chunk is
    /// virtual (the caller is trying to byte-read an image that was sized
    /// but not materialized — a logic error it must handle explicitly).
    pub fn read_all(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(self.len as usize);
        for c in &self.chunks {
            match c {
                Chunk::Real(b) => out.extend_from_slice(b),
                Chunk::Virtual { .. } => return None,
            }
        }
        Some(out)
    }

    /// Truncate to empty.
    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Truncate to `new_len` bytes, slicing through whatever chunk the cut
    /// lands in (a virtual chunk keeps its meta but shrinks — models a torn
    /// write that stopped partway through a sized extent).
    ///
    /// Returns how many bytes of the extent the cut landed in survived the
    /// tear — 0 when the cut falls exactly on a chunk boundary (or beyond the
    /// end). Callers resuming an interrupted upload use this to know how much
    /// of the in-flight extent actually reached the file.
    pub fn truncate(&mut self, new_len: u64) -> u64 {
        if new_len >= self.len {
            return 0;
        }
        let mut kept = 0u64;
        let mut torn_written = 0u64;
        let mut out = Vec::new();
        for c in self.chunks.drain(..) {
            if kept >= new_len {
                break;
            }
            let room = new_len - kept;
            let clen = c.len();
            if clen <= room {
                kept += clen;
                out.push(c);
                continue;
            }
            torn_written = room;
            match c {
                Chunk::Real(mut b) => {
                    b.truncate(room as usize);
                    if !b.is_empty() {
                        out.push(Chunk::Real(b));
                    }
                }
                Chunk::Virtual { meta, .. } => {
                    if room > 0 {
                        out.push(Chunk::Virtual { len: room, meta });
                    }
                }
            }
            kept = new_len;
        }
        self.chunks = out;
        self.len = new_len;
        torn_written
    }

    /// Flip one bit at byte offset `off` within the blob's *real* bytes,
    /// where `off` indexes the concatenation of real chunks only (virtual
    /// extents have no bytes to corrupt). Returns `false` if the blob has
    /// fewer than `off + 1` real bytes.
    pub fn flip_bit(&mut self, off: u64, bit: u8) -> bool {
        let mut skip = off;
        for c in &mut self.chunks {
            if let Chunk::Real(b) = c {
                if skip < b.len() as u64 {
                    b[skip as usize] ^= 1 << (bit & 7);
                    return true;
                }
                skip -= b.len() as u64;
            }
        }
        false
    }

    /// Total number of real (materialized) bytes in the blob.
    pub fn real_len(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| match c {
                Chunk::Real(b) => b.len() as u64,
                Chunk::Virtual { .. } => 0,
            })
            .sum()
    }
}

/// A file.
#[derive(Debug, Clone)]
pub struct FileNode {
    /// Content.
    pub blob: Blob,
    /// Whether writes are permitted (models read-only system data for the
    /// shared-memory restore rules of §4.5).
    pub writable: bool,
}

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound,
    /// Write to a read-only file or creation in a read-only directory.
    ReadOnly,
    /// Byte-read of a file containing virtual extents.
    NotMaterialized,
}

/// One filesystem tree (flat path → file map; directories are implicit).
#[derive(Debug, Clone, Default)]
pub struct Fs {
    files: BTreeMap<String, FileNode>,
    readonly_dirs: BTreeSet<String>,
}

impl Fs {
    /// An empty filesystem.
    pub fn new() -> Self {
        Fs::default()
    }

    /// Does `path` exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Mark a directory prefix read-only (creations under it fail).
    pub fn set_dir_readonly(&mut self, dir: &str) {
        self.readonly_dirs.insert(dir.to_string());
    }

    /// Whether new files may be created under `path`'s directory.
    pub fn dir_writable(&self, path: &str) -> bool {
        !self
            .readonly_dirs
            .iter()
            .any(|d| path.starts_with(d.as_str()))
    }

    /// Create or truncate a file; fails under a read-only directory.
    pub fn create(&mut self, path: &str) -> Result<(), FsError> {
        if let Some(f) = self.files.get_mut(path) {
            if !f.writable {
                return Err(FsError::ReadOnly);
            }
            f.blob.clear();
            return Ok(());
        }
        if !self.dir_writable(path) {
            return Err(FsError::ReadOnly);
        }
        self.files.insert(
            path.to_string(),
            FileNode {
                blob: Blob::new(),
                writable: true,
            },
        );
        Ok(())
    }

    /// Append bytes to an existing file. Returns the bytes written, so a
    /// caller whose write was torn (truncated by a fault) can compare against
    /// the file's eventual size and resume the interrupted extent.
    pub fn append(&mut self, path: &str, bytes: &[u8]) -> Result<u64, FsError> {
        let f = self.files.get_mut(path).ok_or(FsError::NotFound)?;
        if !f.writable {
            return Err(FsError::ReadOnly);
        }
        f.blob.append_bytes(bytes);
        Ok(bytes.len() as u64)
    }

    /// Append a virtual extent to an existing file. Returns the extent size
    /// written (see [`Fs::append`]).
    pub fn append_virtual(&mut self, path: &str, len: u64, meta: Vec<u8>) -> Result<u64, FsError> {
        let f = self.files.get_mut(path).ok_or(FsError::NotFound)?;
        if !f.writable {
            return Err(FsError::ReadOnly);
        }
        f.blob.append_virtual(len, meta);
        Ok(len)
    }

    /// Write a whole file in one call. Returns the bytes written.
    pub fn write_all(&mut self, path: &str, bytes: &[u8]) -> Result<u64, FsError> {
        self.create(path)?;
        self.append(path, bytes)
    }

    /// Read a whole (fully real) file.
    pub fn read_all(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let f = self.files.get(path).ok_or(FsError::NotFound)?;
        f.blob.read_all().ok_or(FsError::NotMaterialized)
    }

    /// Borrow a file node.
    pub fn get(&self, path: &str) -> Option<&FileNode> {
        self.files.get(path)
    }

    /// Mutably borrow a file node.
    pub fn get_mut(&mut self, path: &str) -> Option<&mut FileNode> {
        self.files.get_mut(path)
    }

    /// File size, if it exists.
    pub fn size(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|f| f.blob.len())
    }

    /// Delete a file.
    pub fn remove(&mut self, path: &str) -> Result<(), FsError> {
        self.files.remove(path).map(|_| ()).ok_or(FsError::NotFound)
    }

    /// Mark an existing file read-only.
    pub fn set_readonly(&mut self, path: &str) -> Result<(), FsError> {
        let f = self.files.get_mut(path).ok_or(FsError::NotFound)?;
        f.writable = false;
        Ok(())
    }

    /// All paths with a given prefix, in order (restart-script discovery).
    pub fn list_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.files
            .range(prefix.to_string()..)
            .take_while(move |(p, _)| p.starts_with(prefix))
            .map(|(p, _)| p.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_roundtrips_bytes_and_coalesces() {
        let mut b = Blob::new();
        b.append_bytes(b"hello ");
        b.append_bytes(b"world");
        assert_eq!(b.len(), 11);
        assert_eq!(b.chunks().len(), 1, "adjacent real chunks coalesce");
        assert_eq!(b.read_all().unwrap(), b"hello world");
    }

    #[test]
    fn virtual_chunks_count_but_do_not_materialize() {
        let mut b = Blob::new();
        b.append_bytes(b"hdr");
        b.append_virtual(1 << 30, vec![1, 2, 3]);
        assert_eq!(b.len(), 3 + (1 << 30));
        assert!(b.read_all().is_none());
        assert_eq!(b.chunks().len(), 2);
    }

    #[test]
    fn truncate_slices_through_chunks() {
        let mut b = Blob::new();
        b.append_bytes(b"0123456789");
        b.append_virtual(100, vec![7]);
        b.append_bytes(b"tail");

        let mut t = b.clone();
        assert_eq!(t.truncate(4), 4, "cut inside the first real chunk");
        assert_eq!(t.len(), 4);
        assert_eq!(t.read_all().unwrap(), b"0123");

        let mut t = b.clone();
        assert_eq!(t.truncate(60), 50, "cut inside the virtual extent");
        assert_eq!(t.len(), 60);
        assert_eq!(t.chunks().len(), 2);
        assert_eq!(t.chunks()[1].len(), 50);

        let mut t = b.clone();
        assert_eq!(t.truncate(10_000), 0, "no-op beyond the end");
        assert_eq!(t.len(), 114);

        let mut t = b.clone();
        assert_eq!(t.truncate(0), 0, "cut on a chunk boundary");
        assert!(t.is_empty());

        let mut t = b.clone();
        assert_eq!(t.truncate(10), 0, "cut exactly between real and virtual");
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn flip_bit_targets_real_bytes_only() {
        let mut b = Blob::new();
        b.append_bytes(b"ab");
        b.append_virtual(1000, vec![]);
        b.append_bytes(b"cd");
        assert_eq!(b.real_len(), 4);
        assert!(b.flip_bit(2, 0)); // 'c' -> 'b'
        let mut bytes = Vec::new();
        for c in b.chunks() {
            if let Chunk::Real(r) = c {
                bytes.extend_from_slice(r);
            }
        }
        assert_eq!(bytes, b"abbd");
        assert!(!b.flip_bit(4, 0), "offset past real bytes");
    }

    #[test]
    fn create_write_read() {
        let mut fs = Fs::new();
        fs.write_all("/tmp/x", b"data").unwrap();
        assert_eq!(fs.read_all("/tmp/x").unwrap(), b"data");
        assert_eq!(fs.size("/tmp/x"), Some(4));
        assert!(fs.exists("/tmp/x"));
        assert_eq!(fs.read_all("/nope"), Err(FsError::NotFound));
    }

    #[test]
    fn create_truncates() {
        let mut fs = Fs::new();
        fs.write_all("/f", b"long content").unwrap();
        fs.write_all("/f", b"s").unwrap();
        assert_eq!(fs.read_all("/f").unwrap(), b"s");
    }

    #[test]
    fn readonly_file_rejects_writes() {
        let mut fs = Fs::new();
        fs.write_all("/sys/data", b"system").unwrap();
        fs.set_readonly("/sys/data").unwrap();
        assert_eq!(fs.append("/sys/data", b"x"), Err(FsError::ReadOnly));
        assert_eq!(fs.create("/sys/data"), Err(FsError::ReadOnly));
        // Reading still works.
        assert_eq!(fs.read_all("/sys/data").unwrap(), b"system");
    }

    #[test]
    fn readonly_dir_rejects_creation() {
        let mut fs = Fs::new();
        fs.set_dir_readonly("/usr/lib/");
        assert_eq!(fs.create("/usr/lib/libc.so"), Err(FsError::ReadOnly));
        assert!(fs.create("/home/u/f").is_ok());
        assert!(!fs.dir_writable("/usr/lib/x/y"));
    }

    #[test]
    fn list_prefix_is_ordered_and_scoped() {
        let mut fs = Fs::new();
        for p in ["/ckpt/b.img", "/ckpt/a.img", "/other/c", "/ckpt2/d"] {
            fs.write_all(p, b"").unwrap();
        }
        let got: Vec<_> = fs.list_prefix("/ckpt/").collect();
        assert_eq!(got, vec!["/ckpt/a.img", "/ckpt/b.img"]);
    }
}
