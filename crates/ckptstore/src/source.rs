//! Resolution path: reassemble an image blob from a manifest and its
//! chunks — from the reader's own store when it survived, otherwise from
//! the first peer node whose store holds a complete replica.

use crate::manifest::{chunk_path, manifest_path, Manifest};
use mtcp::ResolvedImage;
use oskit::fs::{Blob, Chunk, Fs};
use oskit::world::{NodeId, World};

/// Reassemble `logical` from one store, or `None` when the manifest is
/// missing or any chunk is absent/torn (a partial replica must not be
/// trusted — the caller falls through to the next node).
///
/// Slice refs (incremental generations aliasing clean regions of an
/// earlier image) are materialized here by slicing the stored chunk's real
/// bytes, so the blob handed back to `mtcp` is byte-identical to the full
/// image the writer described — the reader never sees an alias.
fn assemble(fs: &Fs, logical: &str) -> Option<Blob> {
    let bytes = fs.read_all(&manifest_path(logical)).ok()?;
    let man = Manifest::decode(&bytes)?;
    let mut blob = Blob::new();
    for c in &man.chunks {
        let f = fs.get(&chunk_path(&c.id))?;
        if let Some(off) = c.off {
            // A slice ref must land inside materialized bytes; a torn or
            // virtual chunk cannot satisfy it.
            let stored = f.blob.read_all()?;
            let end = off.checked_add(c.len)? as usize;
            if end > stored.len() {
                return None; // torn upload never completed
            }
            blob.append_bytes(&stored[off as usize..end]);
            continue;
        }
        if f.blob.len() != c.len {
            return None; // torn upload never completed
        }
        for ch in f.blob.chunks() {
            match ch {
                Chunk::Real(b) => blob.append_bytes(b),
                Chunk::Virtual { len, meta } => blob.append_virtual(*len, meta.clone()),
            }
        }
    }
    (blob.len() == man.logical_len).then_some(blob)
}

/// Resolve an image for a reader on `node`: local store first, then every
/// other node in index order (deterministic, so restart picks the same
/// replica on every run).
pub(crate) fn resolve(w: &World, node: NodeId, path: &str) -> Option<ResolvedImage> {
    let ni = node.0 as usize;
    if let Some(blob) = assemble(&w.nodes[ni].fs, path) {
        return Some(ResolvedImage {
            blob,
            fetched_from: None,
        });
    }
    for (i, n) in w.nodes.iter().enumerate() {
        if i == ni {
            continue;
        }
        if let Some(blob) = assemble(&n.fs, path) {
            return Some(ResolvedImage {
                blob,
                fetched_from: Some(NodeId(i as u32)),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ChunkRef;

    #[test]
    fn assemble_rejects_missing_and_torn_chunks() {
        let mut fs = Fs::new();
        let man = Manifest {
            gen: 1,
            logical_len: 10,
            src: "/ckpt/a_gen1.dmtcp".into(),
            chunks: vec![ChunkRef::whole("rab-10", 10)],
        };
        fs.write_all(&manifest_path(&man.src), &man.encode())
            .unwrap();
        assert!(assemble(&fs, &man.src).is_none(), "chunk missing");
        fs.write_all(&chunk_path("rab-10"), &[1u8; 10]).unwrap();
        let got = assemble(&fs, &man.src).expect("complete store assembles");
        assert_eq!(got.read_all().unwrap(), vec![1u8; 10]);
        fs.get_mut(&chunk_path("rab-10")).unwrap().blob.truncate(4);
        assert!(assemble(&fs, &man.src).is_none(), "torn chunk rejected");
    }

    #[test]
    fn assemble_materializes_slice_refs() {
        let mut fs = Fs::new();
        let stored: Vec<u8> = (0..100u8).collect();
        fs.write_all(&chunk_path("rcd-100"), &stored).unwrap();
        let man = Manifest {
            gen: 2,
            logical_len: 30,
            src: "/ckpt/b_gen2.dmtcp".into(),
            chunks: vec![ChunkRef {
                id: "rcd-100".into(),
                len: 30,
                off: Some(40),
            }],
        };
        fs.write_all(&manifest_path(&man.src), &man.encode())
            .unwrap();
        let got = assemble(&fs, &man.src).expect("slice ref assembles");
        assert_eq!(got.read_all().unwrap(), stored[40..70].to_vec());
        // Tear the chunk below the slice's end: the replica must be refused.
        fs.get_mut(&chunk_path("rcd-100"))
            .unwrap()
            .blob
            .truncate(60);
        assert!(assemble(&fs, &man.src).is_none(), "torn slice rejected");
    }
}
