//! `ckptstore` — a content-addressed chunk store for checkpoint images.
//!
//! The paper writes each process image as an opaque compressed file (§5.3,
//! Table 1); at production scale the storage traffic dominates
//! checkpoint-restart cost. This crate interposes on `mtcp`'s pluggable
//! image sink/source and turns every image into:
//!
//! * **chunks** — 256 KiB content-addressed pieces identified by
//!   `szip::crc32` paired with a 64-bit FNV-1a (images end with their own
//!   CRC trailer, which makes any single CRC-family identity degenerate),
//!   written once per node no matter how many images or generations
//!   reference them, with byte-level verification on every dedup hit
//!   (virtual extents — synthetic memory sized but never materialized —
//!   dedup by their recipe, staying virtual);
//! * **manifests** — one small ordered chunk list per image generation, so
//!   generation N of an unchanged process costs only its changed chunks
//!   plus a manifest (the incremental-delta remedy of arXiv:1212.1787);
//! * **replicas** — manifests and chunks are copied to R peer nodes over
//!   the simulated network at commit time, so restart proceeds from a
//!   replica when the node holding the primary image loses its disk;
//! * **GC** — manifests older than the retention window are dropped and
//!   unreferenced chunks swept, bounding store growth.
//!
//! Installing the store changes *where* image bytes live, never what they
//! are: the reassembled blob is byte-identical to what the writer produced,
//! so every CRC and protocol invariant of the checkpoint path still holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod manifest;
mod sink;
mod source;
pub mod tenant;

use oskit::world::World;
use std::cell::RefCell;
use std::rc::Rc;

/// `World::ext_slots` key holding the store's [`Config`].
pub const SLOT: &str = "ckptstore-state";

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Peer nodes each image is replicated to (clamped to cluster size − 1).
    pub replicas: usize,
    /// Chunk size for real byte runs. 256 KiB — four szip blocks — keeps
    /// chunk count moderate while still isolating small-region churn.
    pub chunk_size: u64,
    /// Generations of each image kept before manifests expire and their
    /// now-unreferenced chunks are swept.
    pub retention: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            replicas: 1,
            chunk_size: 4 * szip::stream::BLOCK as u64,
            retention: 4,
        }
    }
}

/// The chunk store as an [`mtcp::ImageStore`] implementation: commits
/// route through [`sink`], resolves through [`source`], both reading the
/// live [`Config`] so reconfiguration takes effect without reinstalling.
struct ChunkStore {
    config: Rc<RefCell<Config>>,
}

impl mtcp::ImageStore for ChunkStore {
    fn commit(
        &self,
        w: &mut World,
        work_start: simkit::Nanos,
        node: oskit::world::NodeId,
        path: &str,
        blob: &oskit::fs::Blob,
    ) -> mtcp::SinkCommit {
        sink::commit(
            &self.config.borrow().clone(),
            w,
            work_start,
            node,
            path,
            blob,
        )
    }

    fn resolve(
        &self,
        w: &World,
        node: oskit::world::NodeId,
        path: &str,
    ) -> Option<mtcp::ResolvedImage> {
        source::resolve(w, node, path)
    }

    fn alias_bound(&self, w: &World, node: oskit::world::NodeId, prev_path: &str) -> Option<u64> {
        // Aliasable iff this node's own store still holds the previous
        // generation's manifest: the sink maps alias extents through it at
        // commit time. A torn prior image has a shorter logical length, so
        // extents past the tear fall back to the full path in the writer.
        let bytes = w.nodes[node.0 as usize]
            .fs
            .read_all(&manifest::manifest_path(prev_path))
            .ok()?;
        Some(manifest::Manifest::decode(&bytes)?.logical_len)
    }
}

/// Install the store into a world: every subsequent `mtcp::write_image`
/// commits through the chunk store and every image read resolves through
/// it. Idempotent; a second call replaces the configuration.
pub fn install(w: &mut World, config: Config) {
    let state = Rc::new(RefCell::new(config));
    w.ext_slots
        .insert(SLOT.to_string(), Box::new(state.clone()));
    mtcp::store::install(w, Rc::new(ChunkStore { config: state }));
}

/// Remove the store; `mtcp` reverts to plain-file images. Already-stored
/// images stay resolvable only until the hooks are gone, so only uninstall
/// between computations.
pub fn uninstall(w: &mut World) {
    mtcp::store::uninstall(w);
    w.ext_slots.remove(SLOT);
}

/// Whether the store is installed in this world.
pub fn enabled(w: &World) -> bool {
    w.ext_slots.contains_key(SLOT)
}

/// The installed configuration, if any.
pub fn config(w: &World) -> Option<Config> {
    w.ext_slots
        .get(SLOT)
        .and_then(|b| b.downcast_ref::<Rc<RefCell<Config>>>())
        .map(|rc| rc.borrow().clone())
}

/// Logical image paths committed for generation `gen`, keyed by the
/// writing process's virtual pid — gathered from every node's manifests,
/// so replicas of an image collapse onto the one logical path they all
/// name. This is the restart planner's per-pid view of a generation: a
/// subset of processes can be restored from exactly these paths, each
/// resolvable from whichever node still holds a complete copy.
pub fn images_for_gen(w: &World, gen: u32) -> std::collections::BTreeMap<u32, String> {
    let mut out = std::collections::BTreeMap::new();
    for node in &w.nodes {
        let paths: Vec<String> = node
            .fs
            .list_prefix(&manifest::manifests_prefix())
            .map(|s| s.to_string())
            .collect();
        for p in paths {
            let Ok(bytes) = node.fs.read_all(&p) else {
                continue;
            };
            let Some(man) = manifest::Manifest::decode(&bytes) else {
                continue;
            };
            if man.gen != gen {
                continue;
            }
            if let Some(vpid) = manifest::parse_vpid(&man.src) {
                out.entry(vpid).or_insert(man.src);
            }
        }
    }
    out
}

/// Resolve one process's generation-`gen` image for a reader on `node`:
/// served from the local chunk store when it survived, otherwise from the
/// first peer holding a complete replica — the live-migration transfer
/// channel. `None` when no complete copy exists anywhere.
pub fn read_for_pid(
    w: &World,
    node: oskit::world::NodeId,
    gen: u32,
    vpid: u32,
) -> Option<mtcp::ResolvedImage> {
    let path = images_for_gen(w, gen).remove(&vpid)?;
    source::resolve(w, node, &path)
}

/// Resolve a logical image path for a reader on `node` (local store first,
/// then every peer in index order). Public face of the replica resolution
/// path for callers that already know the path.
pub fn resolve_image(
    w: &World,
    node: oskit::world::NodeId,
    path: &str,
) -> Option<mtcp::ResolvedImage> {
    source::resolve(w, node, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit::program::{Program, Registry, Step};
    use oskit::world::{NodeId, OsSim, Pid};
    use oskit::{HwSpec, Kernel};
    use simkit::{Nanos, Sim, Snap};
    use std::collections::BTreeMap;

    struct Hog {
        pc: u8,
    }
    simkit::impl_snap!(struct Hog { pc });
    impl Program for Hog {
        fn step(&mut self, k: &mut Kernel<'_>) -> Step {
            if self.pc == 0 {
                k.mmap_synthetic("ballast", 8 << 20, 0xfeed, oskit::mem::FillProfile::Random);
                self.pc = 1;
            }
            Step::Compute(100_000)
        }
        fn tag(&self) -> &'static str {
            "hog"
        }
        fn save(&self) -> Vec<u8> {
            self.to_snap_bytes()
        }
    }

    fn world() -> (World, OsSim, Pid) {
        let mut reg = Registry::new();
        reg.register_snap::<Hog>("hog");
        let mut w = World::new(HwSpec::cluster(), 3, reg);
        let mut sim: OsSim = Sim::new();
        let pid = w.spawn(
            &mut sim,
            NodeId(0),
            "hog",
            Box::new(Hog { pc: 0 }),
            Pid(1),
            BTreeMap::new(),
        );
        sim.run_until(&mut w, Nanos::from_millis(2));
        w.suspend_user_threads(&mut sim, pid);
        (w, sim, pid)
    }

    fn write_gen(w: &mut World, sim: &OsSim, pid: Pid, gen: u32) -> mtcp::WriteReport {
        mtcp::write_image(
            w,
            sim.now(),
            pid,
            &format!("/ckpt/ckpt_1_gen{gen}.dmtcp"),
            mtcp::WriteMode::Compressed,
            1,
            vec![],
        )
    }

    #[test]
    fn store_round_trips_and_dedups_unchanged_generations() {
        let (mut w, sim, pid) = world();
        install(&mut w, Config::default());
        write_gen(&mut w, &sim, pid, 1);
        let gen1 = w.obs.metrics.counter_total("ckptstore.bytes_written");
        assert!(gen1 > 0);
        // The plain file must NOT exist; verification resolves via store.
        assert!(!w.nodes[0].fs.exists("/ckpt/ckpt_1_gen1.dmtcp"));
        let img =
            mtcp::verify_image(&w, NodeId(0), "/ckpt/ckpt_1_gen1.dmtcp").expect("store resolves");
        assert!(!img.regions.is_empty());

        // Unchanged process: generation 2 writes ≥90 % fewer bytes.
        write_gen(&mut w, &sim, pid, 2);
        let gen2 = w.obs.metrics.counter_total("ckptstore.bytes_written") - gen1;
        assert!(
            gen2 * 10 <= gen1,
            "gen2 wrote {gen2} of gen1's {gen1} bytes"
        );
        assert!(w.obs.metrics.counter_total("ckptstore.bytes_deduped") > 0);
    }

    #[test]
    fn replica_serves_after_primary_store_loss() {
        let (mut w, sim, pid) = world();
        install(&mut w, Config::default());
        write_gen(&mut w, &sim, pid, 1);
        // Replica ring: node 1 holds a copy.
        assert!(w.nodes[1]
            .fs
            .list_prefix("/ckptstore/manifests/")
            .next()
            .is_some());
        // Node-local disk loss on the primary.
        let doomed: Vec<String> = w.nodes[0]
            .fs
            .list_prefix(oskit::fs::STORE_ROOT)
            .map(|s| s.to_string())
            .collect();
        for p in doomed {
            w.nodes[0].fs.remove(&p).unwrap();
        }
        let img = mtcp::verify_image(&w, NodeId(0), "/ckpt/ckpt_1_gen1.dmtcp")
            .expect("replica must serve the image");
        assert!(!img.regions.is_empty());
    }

    #[test]
    fn gc_expires_old_generations() {
        let (mut w, sim, pid) = world();
        install(
            &mut w,
            Config {
                retention: 2,
                ..Config::default()
            },
        );
        for gen in 1..=4 {
            write_gen(&mut w, &sim, pid, gen);
        }
        let fs = &w.nodes[0].fs;
        assert!(!fs.exists(&manifest::manifest_path("/ckpt/ckpt_1_gen1.dmtcp")));
        assert!(!fs.exists(&manifest::manifest_path("/ckpt/ckpt_1_gen2.dmtcp")));
        assert!(fs.exists(&manifest::manifest_path("/ckpt/ckpt_1_gen3.dmtcp")));
        assert!(fs.exists(&manifest::manifest_path("/ckpt/ckpt_1_gen4.dmtcp")));
        assert!(
            mtcp::verify_image(&w, NodeId(0), "/ckpt/ckpt_1_gen1.dmtcp").is_err(),
            "expired generation no longer resolves"
        );
    }
}
