//! Commit path: chunk an image blob, dedup against the node's store, write
//! the manifest, replicate to peers, and garbage-collect expired
//! generations.

use crate::manifest::{
    chunk_path, chunks_prefix, manifest_path, manifests_prefix, parse_gen, with_gen, ChunkRef,
    Manifest,
};
use crate::Config;
use mtcp::SinkCommit;
use oskit::fs::{Blob, Chunk, Fs};
use oskit::world::{NodeId, World};
use simkit::Nanos;
use std::collections::BTreeSet;

/// A chunk cut out of an image blob, ready to store.
struct PChunk {
    id: String,
    len: u64,
    data: ChunkData,
}

enum ChunkData {
    Real(Vec<u8>),
    Virtual { len: u64, meta: Vec<u8> },
}

/// 64-bit FNV-1a. The chunk identity needs a second hash that is *not*
/// linear over GF(2): checkpoint images end with their own CRC-32 trailer,
/// and for such self-checksummed content the contribution of the bytes to
/// any CRC-family hash of the whole cancels out (the CRC residue property),
/// so distinct header-only images of equal length all share one CRC-32.
/// FNV's multiplicative mixing has no such degeneracy.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cut an image blob into content-addressed chunks: real byte runs split at
/// `chunk_size` boundaries, virtual extents kept whole (identified by their
/// recipe metadata — two generations of the same synthetic region share one
/// chunk without either ever being materialized). Identity is the CRC-32 of
/// the content joined with its FNV-1a 64 and the length; dedup additionally
/// verifies bytes, so a colliding id can never alias different content.
fn chunk_blob(blob: &Blob, chunk_size: u64) -> Vec<PChunk> {
    let mut out = Vec::new();
    for c in blob.chunks() {
        match c {
            Chunk::Real(bytes) => {
                for piece in bytes.chunks(chunk_size.max(1) as usize) {
                    out.push(PChunk {
                        id: format!(
                            "r{:08x}{:016x}-{}",
                            szip::crc32(piece),
                            fnv1a64(piece),
                            piece.len()
                        ),
                        len: piece.len() as u64,
                        data: ChunkData::Real(piece.to_vec()),
                    });
                }
            }
            Chunk::Virtual { len, meta } => {
                out.push(PChunk {
                    id: format!("v{:08x}{:016x}-{}", szip::crc32(meta), fnv1a64(meta), len),
                    len: *len,
                    data: ChunkData::Virtual {
                        len: *len,
                        meta: meta.clone(),
                    },
                });
            }
        }
    }
    out
}

enum Put {
    /// Chunk already present in full: nothing written.
    Deduped,
    /// Chunk written (the count is the bytes that went to storage — the
    /// whole chunk, or just the missing tail when resuming a torn upload).
    Wrote(u64),
}

/// Idempotently store one chunk. A file that already exists at its full
/// length with the same bytes is a dedup hit; a *shorter* file with a
/// matching prefix is a torn upload from an interrupted replication — for
/// real chunks only the missing tail is re-sent, which is exactly why
/// [`Fs::append`] and `Blob::truncate` report byte counts. A same-id file
/// with *different* content is an id collision: content-addressing with a
/// non-cryptographic hash must verify before trusting the address, and a
/// collision here would silently resurrect another image's bytes on
/// restart, so it is a hard error.
fn put_chunk(fs: &mut Fs, path: &str, chunk: &PChunk) -> Put {
    if let Some(have) = fs.size(path) {
        if have == chunk.len {
            let same = match (&chunk.data, fs.get(path)) {
                (ChunkData::Real(bytes), Some(f)) => {
                    f.blob.read_all().as_deref() == Some(bytes.as_slice())
                }
                (ChunkData::Virtual { len, meta }, Some(f)) => matches!(
                    f.blob.chunks().first(),
                    Some(Chunk::Virtual { len: l, meta: m }) if l == len && m == meta
                ),
                (_, None) => false,
            };
            assert!(
                same,
                "chunk id collision at {path}: same id, different content"
            );
            return Put::Deduped;
        }
        if let ChunkData::Real(bytes) = &chunk.data {
            let resumable = have < chunk.len
                && fs.get(path).map(|f| f.blob.real_len()) == Some(have)
                && fs
                    .get(path)
                    .and_then(|f| f.blob.read_all())
                    .is_some_and(|stored| stored == bytes[..have as usize]);
            if resumable {
                let written = fs
                    .append(path, &bytes[have as usize..])
                    .expect("store dir writable");
                return Put::Wrote(written);
            }
        }
        // Wrong length and not resumable: rewrite from scratch.
    }
    fs.create(path).expect("store dir writable");
    let written = match &chunk.data {
        ChunkData::Real(bytes) => fs.append(path, bytes),
        ChunkData::Virtual { len, meta } => fs.append_virtual(path, *len, meta.clone()),
    }
    .expect("store dir writable");
    Put::Wrote(written)
}

/// Commit an image into the store on `node` and return what `mtcp` needs:
/// physical bytes stored and when the image (including replicas) is durable.
pub(crate) fn commit(
    cfg: &Config,
    w: &mut World,
    now: Nanos,
    node: NodeId,
    path: &str,
    blob: &Blob,
) -> SinkCommit {
    let pieces = chunk_blob(blob, cfg.chunk_size);
    let gen = parse_gen(path).unwrap_or(0);
    let ni = node.0 as usize;

    // ---- Local store: new chunks, then the manifest. ----
    let mut new_bytes = 0u64;
    let mut deduped_bytes = 0u64;
    let mut io_done = now;
    let mut new_ids: BTreeSet<String> = BTreeSet::new();
    for p in &pieces {
        let cpath = chunk_path(&p.id);
        match put_chunk(&mut w.nodes[ni].fs, &cpath, p) {
            Put::Deduped => deduped_bytes += p.len,
            Put::Wrote(n) => {
                new_bytes += n;
                new_ids.insert(p.id.clone());
                io_done = io_done.max(w.charge_storage_write(now, node, &cpath, n));
            }
        }
    }
    let man = Manifest {
        gen,
        logical_len: blob.len(),
        src: path.to_string(),
        chunks: pieces
            .iter()
            .map(|p| ChunkRef {
                id: p.id.clone(),
                len: p.len,
            })
            .collect(),
    };
    let man_bytes = man.encode();
    let mpath = manifest_path(path);
    let man_len = w.nodes[ni]
        .fs
        .write_all(&mpath, &man_bytes)
        .expect("store dir writable");
    new_bytes += man_len;
    io_done = io_done.max(w.charge_storage_write(now, node, &mpath, man_len));

    // ---- Delta against the previous generation, if it exists. ----
    if gen > 1 {
        if let Some(prev_path) = with_gen(path, gen - 1) {
            if let Ok(prev) = w.nodes[ni].fs.read_all(&manifest_path(&prev_path)) {
                if let Some(prev_man) = Manifest::decode(&prev) {
                    let prev_ids: BTreeSet<&str> =
                        prev_man.chunks.iter().map(|c| c.id.as_str()).collect();
                    let delta: u64 = man
                        .chunks
                        .iter()
                        .filter(|c| !prev_ids.contains(c.id.as_str()))
                        .map(|c| c.len)
                        .sum();
                    let ratio = delta as f64 / man.logical_len.max(1) as f64;
                    w.obs.metrics.add("ckptstore.delta_bytes", 0, delta);
                    w.obs
                        .metrics
                        .set_gauge("ckptstore.delta_ratio", node.0 as u64, ratio);
                }
            }
        }
    }

    // ---- Replication: copy the manifest and its missing chunks to R
    // peers (ring order), so restart can proceed when this node's disk is
    // gone. Charged as one NIC transfer from the primary plus the peer's
    // own storage write; the checkpoint is not declared durable until the
    // slowest replica has it. ----
    let n_nodes = w.nodes.len();
    let r = cfg.replicas.min(n_nodes.saturating_sub(1));
    let mut rep_done = io_done;
    for k in 1..=r {
        let peer = (ni + k) % n_nodes;
        let mut sent = 0u64;
        for p in &pieces {
            let cpath = chunk_path(&p.id);
            match put_chunk(&mut w.nodes[peer].fs, &cpath, p) {
                Put::Deduped => {}
                Put::Wrote(n) => sent += n,
            }
        }
        w.nodes[peer]
            .fs
            .write_all(&mpath, &man_bytes)
            .expect("store dir writable");
        sent += man_len;
        let tx_done = w.nodes[ni].nic_tx.transfer(io_done, sent) + w.spec.net_latency;
        let peer_done = w.charge_storage_write(tx_done, NodeId(peer as u32), &mpath, sent);
        rep_done = rep_done.max(peer_done);
        w.obs
            .metrics
            .add("ckptstore.replication_bytes", peer as u64, sent);
        gc(w, peer, path, gen, cfg.retention);
    }
    let lag = rep_done.saturating_sub(io_done);
    w.obs
        .metrics
        .observe("ckptstore.replication_lag_ns", node.0 as u64, lag.0);

    gc(w, ni, path, gen, cfg.retention);

    w.obs
        .metrics
        .add("ckptstore.bytes_written", node.0 as u64, new_bytes);
    w.obs
        .metrics
        .add("ckptstore.bytes_deduped", node.0 as u64, deduped_bytes);
    w.obs.metrics.add(
        "ckptstore.chunks_written",
        node.0 as u64,
        new_ids.len() as u64,
    );

    SinkCommit {
        stored_bytes: new_bytes,
        io_done: rep_done,
    }
}

/// Retention + mark-and-sweep on one node's store: drop this image's
/// manifests older than `retention` generations, then delete any chunk no
/// remaining manifest references.
fn gc(w: &mut World, node_idx: usize, path: &str, gen: u32, retention: u32) {
    let fs = &mut w.nodes[node_idx].fs;
    if gen > retention {
        for old in 1..=(gen - retention) {
            if let Some(old_path) = with_gen(path, old) {
                fs.remove(&manifest_path(&old_path)).ok();
            }
        }
    }
    // Mark: every chunk referenced by any surviving manifest.
    let mut live: BTreeSet<String> = BTreeSet::new();
    let manifest_files: Vec<String> = fs
        .list_prefix(&manifests_prefix())
        .map(|s| s.to_string())
        .collect();
    for mf in &manifest_files {
        if let Ok(bytes) = fs.read_all(mf) {
            if let Some(m) = Manifest::decode(&bytes) {
                live.extend(m.chunks.into_iter().map(|c| c.id));
            }
        }
    }
    // Sweep: unreferenced chunk files.
    let prefix = chunks_prefix();
    let dead: Vec<(String, u64)> = fs
        .list_prefix(&prefix)
        .filter(|p| {
            !live.contains(
                p.strip_prefix(prefix.as_str())
                    .expect("listed under prefix"),
            )
        })
        .map(|p| (p.to_string(), fs.size(p).unwrap_or(0)))
        .collect();
    let mut reclaimed = 0u64;
    for (p, sz) in dead {
        fs.remove(&p).ok();
        reclaimed += sz;
    }
    if reclaimed > 0 {
        w.obs
            .metrics
            .add("ckptstore.gc_reclaimed", node_idx as u64, reclaimed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_splits_real_runs_and_keeps_virtual_whole() {
        let mut b = Blob::new();
        b.append_bytes(&vec![7u8; 600]);
        b.append_virtual(1 << 30, vec![1, 2, 3]);
        b.append_bytes(b"tail");
        let pieces = chunk_blob(&b, 256);
        assert_eq!(pieces.len(), 3 + 1 + 1, "600 B at 256 → 3 pieces");
        assert_eq!(pieces[0].len, 256);
        assert_eq!(pieces[2].len, 88);
        assert!(pieces[3].id.starts_with('v'));
        assert_eq!(pieces[3].len, 1 << 30);
        assert_eq!(pieces[0].id, pieces[1].id, "identical content, same id");
        let total: u64 = pieces.iter().map(|p| p.len).sum();
        assert_eq!(total, b.len());
    }

    #[test]
    fn put_chunk_dedups_and_resumes_torn_uploads() {
        let mut fs = Fs::new();
        let bytes = vec![9u8; 1000];
        let chunk = PChunk {
            id: "r0-1000".into(),
            len: 1000,
            data: ChunkData::Real(bytes.clone()),
        };
        let p = chunk_path(&chunk.id);
        assert!(matches!(put_chunk(&mut fs, &p, &chunk), Put::Wrote(1000)));
        assert!(matches!(put_chunk(&mut fs, &p, &chunk), Put::Deduped));
        // Tear the upload: only the missing tail goes back out.
        let torn = fs.get_mut(&p).expect("chunk exists");
        assert_eq!(torn.blob.truncate(300), 300);
        assert!(matches!(put_chunk(&mut fs, &p, &chunk), Put::Wrote(700)));
        assert_eq!(fs.read_all(&p).unwrap(), bytes);
    }

    /// Checkpoint images end with their own CRC-32; by the CRC residue
    /// property every such buffer of one length has the *same* CRC-32, so a
    /// CRC-only identity deduped distinct images into one chunk (restart
    /// then resurrected another generation's state). The FNV half of the id
    /// must keep them apart.
    #[test]
    fn self_checksummed_content_gets_distinct_ids() {
        let image = |fill: u8| {
            let mut m = vec![fill; 64];
            let c = szip::crc32(&m);
            m.extend_from_slice(&c.to_le_bytes());
            m
        };
        let (a, b) = (image(1), image(2));
        assert_eq!(
            szip::crc32(&a),
            szip::crc32(&b),
            "residue property: self-checksummed buffers share a CRC"
        );
        let id_of = |bytes: &[u8]| {
            let mut bl = Blob::new();
            bl.append_bytes(bytes);
            chunk_blob(&bl, 1 << 20).remove(0).id
        };
        assert_ne!(id_of(&a), id_of(&b), "ids must still differ");
    }

    #[test]
    #[should_panic(expected = "chunk id collision")]
    fn colliding_id_with_different_content_is_refused() {
        let mut fs = Fs::new();
        let mk = |fill: u8| PChunk {
            id: "r0-4".into(),
            len: 4,
            data: ChunkData::Real(vec![fill; 4]),
        };
        let p = chunk_path("r0-4");
        assert!(matches!(put_chunk(&mut fs, &p, &mk(1)), Put::Wrote(4)));
        put_chunk(&mut fs, &p, &mk(2));
    }
}
