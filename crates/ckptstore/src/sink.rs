//! Commit path: chunk an image blob, dedup against the node's store, write
//! the manifest, replicate to peers, and garbage-collect expired
//! generations.
//!
//! Two behaviours layered on the PR-3 store:
//!
//! * **Alias extents** (incremental checkpoints): a virtual blob chunk
//!   whose metadata decodes via [`mtcp::incr::decode_alias`] names a byte
//!   range of the *previous* generation's image. It is mapped through the
//!   previous manifest into slice refs — manifest entries pointing into
//!   chunks the store already holds — so a clean region costs no chunk
//!   write, no hash, and no replica traffic. Mapping composes through
//!   slice refs in the previous manifest, keeping chains one level deep.
//! * **Pipelined replication**: each chunk's transfer to a peer starts when
//!   that chunk is locally durable (immediately, for dedup hits) instead of
//!   waiting for the whole image at `io_done`; the manifest is sent last,
//!   only after every chunk it references is durable on the peer, so a
//!   replica that *has* a manifest is complete up to torn-transfer damage
//!   the assemble-side length checks already reject.

use crate::manifest::{
    chunk_path, chunks_prefix, manifest_path, manifests_prefix, parse_gen, with_gen, ChunkRef,
    Manifest,
};
use crate::Config;
use mtcp::SinkCommit;
use oskit::fs::{Blob, Chunk, Fs};
use oskit::world::{NodeId, World};
use simkit::Nanos;
use std::collections::{BTreeMap, BTreeSet};

/// A chunk cut out of an image blob, ready to store.
struct PChunk {
    id: String,
    len: u64,
    data: ChunkData,
}

enum ChunkData {
    Real(Vec<u8>),
    Virtual { len: u64, meta: Vec<u8> },
}

/// One piece of a blob: either a chunk to store, or an alias extent to map
/// through the previous generation's manifest.
enum Piece {
    Store(PChunk),
    Alias {
        prev_path: String,
        off: u64,
        len: u64,
    },
}

/// 64-bit FNV-1a. The chunk identity needs a second hash that is *not*
/// linear over GF(2): checkpoint images end with their own CRC-32 trailer,
/// and for such self-checksummed content the contribution of the bytes to
/// any CRC-family hash of the whole cancels out (the CRC residue property),
/// so distinct header-only images of equal length all share one CRC-32.
/// FNV's multiplicative mixing has no such degeneracy.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cut an image blob into content-addressed chunks: real byte runs split at
/// `chunk_size` boundaries, virtual extents kept whole (identified by their
/// recipe metadata — two generations of the same synthetic region share one
/// chunk without either ever being materialized). Identity is the CRC-32 of
/// the content joined with its FNV-1a 64 and the length; dedup additionally
/// verifies bytes, so a colliding id can never alias different content.
fn chunk_blob(blob: &Blob, chunk_size: u64) -> Vec<Piece> {
    let mut out = Vec::new();
    for c in blob.chunks() {
        match c {
            Chunk::Real(bytes) => {
                for piece in bytes.chunks(chunk_size.max(1) as usize) {
                    out.push(Piece::Store(PChunk {
                        id: format!(
                            "r{:08x}{:016x}-{}",
                            szip::crc32(piece),
                            fnv1a64(piece),
                            piece.len()
                        ),
                        len: piece.len() as u64,
                        data: ChunkData::Real(piece.to_vec()),
                    }));
                }
            }
            Chunk::Virtual { len, meta } => {
                // An alias extent never becomes a chunk of its own: it is a
                // pointer into the previous image, resolved at manifest
                // level. A torn write may have shrunk the extent (`len` <
                // the length in the meta); the prefix is still valid.
                if let Some((prev_path, off, alias_len)) = mtcp::incr::decode_alias(meta) {
                    out.push(Piece::Alias {
                        prev_path,
                        off,
                        len: (*len).min(alias_len),
                    });
                    continue;
                }
                out.push(Piece::Store(PChunk {
                    id: format!("v{:08x}{:016x}-{}", szip::crc32(meta), fnv1a64(meta), len),
                    len: *len,
                    data: ChunkData::Virtual {
                        len: *len,
                        meta: meta.clone(),
                    },
                }));
            }
        }
    }
    out
}

/// Map an alias extent — `len` bytes from byte `off` of the previous
/// image — through that image's manifest into slice refs. Composes through
/// slice refs already present in the previous manifest, so a chain of
/// incremental generations always refs real stored chunks directly.
///
/// Panics if the extent is not fully covered: the writer checked the alias
/// bound against this very manifest, so a shortfall is store corruption.
fn map_alias(prev_man: &Manifest, off: u64, len: u64) -> Vec<ChunkRef> {
    let mut out = Vec::new();
    let end = off + len;
    let mut base = 0u64;
    let mut covered = 0u64;
    for c in &prev_man.chunks {
        let c_end = base + c.len;
        if c_end > off && base < end {
            let s = off.max(base);
            let e = end.min(c_end);
            let within = c.off.unwrap_or(0) + (s - base);
            let whole = c.off.is_none() && within == 0 && e - s == c.len;
            out.push(ChunkRef {
                id: c.id.clone(),
                len: e - s,
                off: (!whole).then_some(within),
            });
            covered += e - s;
        }
        base = c_end;
    }
    assert!(
        covered == len,
        "alias extent [{off}, {end}) exceeds previous image {} (len {})",
        prev_man.src,
        prev_man.logical_len
    );
    out
}

/// Rebuild a storable chunk from this node's own store (used to re-send a
/// slice-referenced chunk to a peer that lost it).
fn local_pchunk(fs: &Fs, id: &str) -> Option<PChunk> {
    let f = fs.get(&chunk_path(id))?;
    let data = match f.blob.chunks().first() {
        Some(Chunk::Virtual { len, meta }) => ChunkData::Virtual {
            len: *len,
            meta: meta.clone(),
        },
        Some(Chunk::Real(_)) => ChunkData::Real(f.blob.read_all()?),
        None => return None,
    };
    Some(PChunk {
        id: id.to_string(),
        len: f.blob.len(),
        data,
    })
}

enum Put {
    /// Chunk already present in full: nothing written.
    Deduped,
    /// Chunk written (the count is the bytes that went to storage — the
    /// whole chunk, or just the missing tail when resuming a torn upload).
    Wrote(u64),
}

/// Idempotently store one chunk. A file that already exists at its full
/// length with the same bytes is a dedup hit; a *shorter* file with a
/// matching prefix is a torn upload from an interrupted replication — for
/// real chunks only the missing tail is re-sent, which is exactly why
/// [`Fs::append`] and `Blob::truncate` report byte counts. A same-id file
/// with *different* content is an id collision: content-addressing with a
/// non-cryptographic hash must verify before trusting the address, and a
/// collision here would silently resurrect another image's bytes on
/// restart, so it is a hard error.
fn put_chunk(fs: &mut Fs, path: &str, chunk: &PChunk) -> Put {
    if let Some(have) = fs.size(path) {
        if have == chunk.len {
            let same = match (&chunk.data, fs.get(path)) {
                (ChunkData::Real(bytes), Some(f)) => {
                    f.blob.read_all().as_deref() == Some(bytes.as_slice())
                }
                (ChunkData::Virtual { len, meta }, Some(f)) => matches!(
                    f.blob.chunks().first(),
                    Some(Chunk::Virtual { len: l, meta: m }) if l == len && m == meta
                ),
                (_, None) => false,
            };
            assert!(
                same,
                "chunk id collision at {path}: same id, different content"
            );
            return Put::Deduped;
        }
        if let ChunkData::Real(bytes) = &chunk.data {
            let resumable = have < chunk.len
                && fs.get(path).map(|f| f.blob.real_len()) == Some(have)
                && fs
                    .get(path)
                    .and_then(|f| f.blob.read_all())
                    .is_some_and(|stored| stored == bytes[..have as usize]);
            if resumable {
                let written = fs
                    .append(path, &bytes[have as usize..])
                    .expect("store dir writable");
                return Put::Wrote(written);
            }
        }
        // Wrong length and not resumable: rewrite from scratch.
    }
    fs.create(path).expect("store dir writable");
    let written = match &chunk.data {
        ChunkData::Real(bytes) => fs.append(path, bytes),
        ChunkData::Virtual { len, meta } => fs.append_virtual(path, *len, meta.clone()),
    }
    .expect("store dir writable");
    Put::Wrote(written)
}

/// How a chunk reaches a replica.
enum RepData {
    /// Freshly chunked this commit: send the in-memory piece.
    Piece(usize),
    /// Slice-referenced from a previous generation: re-read from the local
    /// store only if the peer is missing it (normally a no-op — the ring is
    /// stable, so the peer got it when that generation replicated).
    FromStore,
}

/// One chunk a replica must hold, and when it becomes locally available
/// for transfer.
struct RepItem {
    id: String,
    avail: Nanos,
    data: RepData,
}

/// Commit an image into the store on `node` and return what `mtcp` needs:
/// physical bytes stored and when the image (including replicas) is durable.
pub(crate) fn commit(
    cfg: &Config,
    w: &mut World,
    now: Nanos,
    node: NodeId,
    path: &str,
    blob: &Blob,
) -> SinkCommit {
    let pieces = chunk_blob(blob, cfg.chunk_size);
    let gen = parse_gen(path).unwrap_or(0);
    let ni = node.0 as usize;
    // Inside a tenant namespace the owner's retention policy governs GC.
    let retention = crate::tenant::retention_for(w, path, cfg.retention);

    // ---- Local store: new chunks (alias extents become slice refs into
    // already-stored chunks), then the manifest. ----
    let mut new_bytes = 0u64;
    let mut deduped_bytes = 0u64;
    let mut io_done = now;
    let mut new_ids: BTreeSet<String> = BTreeSet::new();
    let mut entries: Vec<ChunkRef> = Vec::new();
    let mut rep_items: Vec<RepItem> = Vec::new();
    let mut seen_rep: BTreeSet<String> = BTreeSet::new();
    let mut prev_mans: BTreeMap<String, Manifest> = BTreeMap::new();
    for (idx, piece) in pieces.iter().enumerate() {
        match piece {
            Piece::Store(p) => {
                let cpath = chunk_path(&p.id);
                let avail = match put_chunk(&mut w.nodes[ni].fs, &cpath, p) {
                    Put::Deduped => {
                        deduped_bytes += p.len;
                        now
                    }
                    Put::Wrote(n) => {
                        new_bytes += n;
                        new_ids.insert(p.id.clone());
                        let done = w.charge_storage_write(now, node, &cpath, n);
                        io_done = io_done.max(done);
                        done
                    }
                };
                entries.push(ChunkRef::whole(p.id.clone(), p.len));
                if seen_rep.insert(p.id.clone()) {
                    rep_items.push(RepItem {
                        id: p.id.clone(),
                        avail,
                        data: RepData::Piece(idx),
                    });
                }
            }
            Piece::Alias {
                prev_path,
                off,
                len,
            } => {
                let fs = &w.nodes[ni].fs;
                let man = prev_mans.entry(prev_path.clone()).or_insert_with(|| {
                    let bytes = fs
                        .read_all(&manifest_path(prev_path))
                        .expect("alias target manifest present (writer checked alias_bound)");
                    Manifest::decode(&bytes).expect("alias target manifest well-formed")
                });
                for r in map_alias(man, *off, *len) {
                    if seen_rep.insert(r.id.clone()) {
                        rep_items.push(RepItem {
                            id: r.id.clone(),
                            avail: now,
                            data: RepData::FromStore,
                        });
                    }
                    entries.push(r);
                }
            }
        }
    }
    let man = Manifest {
        gen,
        logical_len: blob.len(),
        src: path.to_string(),
        chunks: entries,
    };
    let man_bytes = man.encode();
    let mpath = manifest_path(path);
    let man_len = w.nodes[ni]
        .fs
        .write_all(&mpath, &man_bytes)
        .expect("store dir writable");
    new_bytes += man_len;
    io_done = io_done.max(w.charge_storage_write(now, node, &mpath, man_len));

    // ---- Delta against the previous generation, if it exists. ----
    if gen > 1 {
        if let Some(prev_path) = with_gen(path, gen - 1) {
            if let Ok(prev) = w.nodes[ni].fs.read_all(&manifest_path(&prev_path)) {
                if let Some(prev_man) = Manifest::decode(&prev) {
                    let prev_ids: BTreeSet<&str> =
                        prev_man.chunks.iter().map(|c| c.id.as_str()).collect();
                    let delta: u64 = man
                        .chunks
                        .iter()
                        .filter(|c| !prev_ids.contains(c.id.as_str()))
                        .map(|c| c.len)
                        .sum();
                    let ratio = delta as f64 / man.logical_len.max(1) as f64;
                    w.obs.metrics.add("ckptstore.delta_bytes", 0, delta);
                    w.obs
                        .metrics
                        .set_gauge("ckptstore.delta_ratio", node.0 as u64, ratio);
                }
            }
        }
    }

    // ---- Replication: copy the manifest and its missing chunks to R
    // peers (ring order), so restart can proceed when this node's disk is
    // gone. Pipelined with the local commit: each chunk's NIC transfer
    // starts when that chunk is locally durable (immediately for dedup
    // hits) rather than when the whole image is, and the manifest is sent
    // last — only once every chunk it references is durable on the peer —
    // so a replica holding a manifest is complete. The checkpoint is not
    // declared durable until the slowest replica has the manifest. ----
    let n_nodes = w.nodes.len();
    let r = cfg.replicas.min(n_nodes.saturating_sub(1));
    let mut rep_done = io_done;
    let mut pipelined = 0u64;
    for k in 1..=r {
        let peer = (ni + k) % n_nodes;
        let mut sent = 0u64;
        let mut chunks_durable = now;
        for item in &rep_items {
            let cpath = chunk_path(&item.id);
            let put = match &item.data {
                RepData::Piece(idx) => {
                    let Piece::Store(p) = &pieces[*idx] else {
                        unreachable!("RepData::Piece indexes a stored piece")
                    };
                    Some(put_chunk(&mut w.nodes[peer].fs, &cpath, p))
                }
                RepData::FromStore => {
                    let local_len = w.nodes[ni].fs.size(&cpath);
                    if local_len.is_none() || w.nodes[peer].fs.size(&cpath) == local_len {
                        None
                    } else {
                        local_pchunk(&w.nodes[ni].fs, &item.id)
                            .map(|p| put_chunk(&mut w.nodes[peer].fs, &cpath, &p))
                    }
                }
            };
            if let Some(Put::Wrote(n)) = put {
                if item.avail < io_done {
                    pipelined += 1;
                }
                let tx_done = w.nodes[ni].nic_tx.transfer(item.avail, n) + w.spec.net_latency;
                let peer_done = w.charge_storage_write(tx_done, NodeId(peer as u32), &cpath, n);
                chunks_durable = chunks_durable.max(peer_done);
                sent += n;
            }
        }
        w.nodes[peer]
            .fs
            .write_all(&mpath, &man_bytes)
            .expect("store dir writable");
        sent += man_len;
        let man_start = io_done.max(chunks_durable);
        let tx_done = w.nodes[ni].nic_tx.transfer(man_start, man_len) + w.spec.net_latency;
        let peer_done = w.charge_storage_write(tx_done, NodeId(peer as u32), &mpath, man_len);
        rep_done = rep_done.max(peer_done);
        w.obs
            .metrics
            .add("ckptstore.replication_bytes", peer as u64, sent);
        gc(w, peer, path, gen, retention);
    }
    if pipelined > 0 {
        w.obs
            .metrics
            .add("ckptstore.pipelined_chunks", node.0 as u64, pipelined);
    }
    let lag = rep_done.saturating_sub(io_done);
    w.obs
        .metrics
        .observe("ckptstore.replication_lag_ns", node.0 as u64, lag.0);

    gc(w, ni, path, gen, retention);

    // Tenant ledger: charge this commit's stored bytes, credit the
    // generations that just expired under the tenant's retention window.
    if let Some(tenant) = crate::tenant::tenant_of(path).map(|t| t.to_string()) {
        crate::tenant::charge(w, &tenant, &mpath, new_bytes);
        if gen > retention {
            for old in 1..=(gen - retention) {
                if let Some(old_path) = with_gen(path, old) {
                    crate::tenant::credit(w, &tenant, &manifest_path(&old_path));
                }
            }
        }
    }

    w.obs
        .metrics
        .add("ckptstore.bytes_written", node.0 as u64, new_bytes);
    w.obs
        .metrics
        .add("ckptstore.bytes_deduped", node.0 as u64, deduped_bytes);
    w.obs.metrics.add(
        "ckptstore.chunks_written",
        node.0 as u64,
        new_ids.len() as u64,
    );

    SinkCommit {
        stored_bytes: new_bytes,
        io_done: rep_done,
    }
}

/// Retention + mark-and-sweep on one node's store: drop this image's
/// manifests older than `retention` generations, then delete any chunk no
/// remaining manifest references.
fn gc(w: &mut World, node_idx: usize, path: &str, gen: u32, retention: u32) {
    let fs = &mut w.nodes[node_idx].fs;
    if gen > retention {
        for old in 1..=(gen - retention) {
            if let Some(old_path) = with_gen(path, old) {
                fs.remove(&manifest_path(&old_path)).ok();
            }
        }
    }
    // Mark: every chunk referenced by any surviving manifest.
    let mut live: BTreeSet<String> = BTreeSet::new();
    let manifest_files: Vec<String> = fs
        .list_prefix(&manifests_prefix())
        .map(|s| s.to_string())
        .collect();
    for mf in &manifest_files {
        if let Ok(bytes) = fs.read_all(mf) {
            if let Some(m) = Manifest::decode(&bytes) {
                live.extend(m.chunks.into_iter().map(|c| c.id));
            }
        }
    }
    // Sweep: unreferenced chunk files.
    let prefix = chunks_prefix();
    let dead: Vec<(String, u64)> = fs
        .list_prefix(&prefix)
        .filter(|p| {
            !live.contains(
                p.strip_prefix(prefix.as_str())
                    .expect("listed under prefix"),
            )
        })
        .map(|p| (p.to_string(), fs.size(p).unwrap_or(0)))
        .collect();
    let mut reclaimed = 0u64;
    for (p, sz) in dead {
        fs.remove(&p).ok();
        reclaimed += sz;
    }
    if reclaimed > 0 {
        w.obs
            .metrics
            .add("ckptstore.gc_reclaimed", node_idx as u64, reclaimed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(p: &Piece) -> &PChunk {
        match p {
            Piece::Store(c) => c,
            Piece::Alias { .. } => panic!("expected a stored piece"),
        }
    }

    #[test]
    fn chunking_splits_real_runs_and_keeps_virtual_whole() {
        let mut b = Blob::new();
        b.append_bytes(&vec![7u8; 600]);
        b.append_virtual(1 << 30, vec![1, 2, 3]);
        b.append_bytes(b"tail");
        let pieces = chunk_blob(&b, 256);
        assert_eq!(pieces.len(), 3 + 1 + 1, "600 B at 256 → 3 pieces");
        assert_eq!(stored(&pieces[0]).len, 256);
        assert_eq!(stored(&pieces[2]).len, 88);
        assert!(stored(&pieces[3]).id.starts_with('v'));
        assert_eq!(stored(&pieces[3]).len, 1 << 30);
        assert_eq!(
            stored(&pieces[0]).id,
            stored(&pieces[1]).id,
            "identical content, same id"
        );
        let total: u64 = pieces.iter().map(|p| stored(p).len).sum();
        assert_eq!(total, b.len());
    }

    #[test]
    fn alias_extents_become_alias_pieces_not_chunks() {
        let mut b = Blob::new();
        b.append_bytes(b"header");
        let meta = mtcp::incr::encode_alias("/ckpt/a_gen1.dmtcp", 4096, 1000);
        b.append_virtual(1000, meta);
        let pieces = chunk_blob(&b, 256);
        assert_eq!(pieces.len(), 2);
        match &pieces[1] {
            Piece::Alias {
                prev_path,
                off,
                len,
            } => {
                assert_eq!(prev_path, "/ckpt/a_gen1.dmtcp");
                assert_eq!((*off, *len), (4096, 1000));
            }
            Piece::Store(_) => panic!("alias extent must not become a chunk"),
        }
        // A torn truncate shrinks the extent; the prefix is still aliased.
        b.truncate(b.len() - 600);
        let torn = chunk_blob(&b, 256);
        match &torn[1] {
            Piece::Alias { len, .. } => assert_eq!(*len, 400),
            Piece::Store(_) => panic!("torn alias extent must stay an alias"),
        }
    }

    #[test]
    fn map_alias_slices_and_composes() {
        let man = Manifest {
            gen: 2,
            logical_len: 1000,
            src: "/ckpt/a_gen2.dmtcp".into(),
            chunks: vec![
                ChunkRef::whole("ra-400", 400),
                // Itself a slice ref (gen 2 aliased gen 1): composition must
                // point straight at the stored chunk.
                ChunkRef {
                    id: "rb-4096".into(),
                    len: 600,
                    off: Some(100),
                },
            ],
        };
        // Whole-image alias → whole-chunk ref plus the original slice.
        let refs = map_alias(&man, 0, 1000);
        assert_eq!(
            refs,
            vec![
                ChunkRef::whole("ra-400", 400),
                ChunkRef {
                    id: "rb-4096".into(),
                    len: 600,
                    off: Some(100),
                },
            ]
        );
        // A range crossing both entries slices each side and composes the
        // inner offset.
        let refs = map_alias(&man, 300, 300);
        assert_eq!(
            refs,
            vec![
                ChunkRef {
                    id: "ra-400".into(),
                    len: 100,
                    off: Some(300),
                },
                ChunkRef {
                    id: "rb-4096".into(),
                    len: 200,
                    off: Some(100),
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "exceeds previous image")]
    fn map_alias_refuses_uncovered_ranges() {
        let man = Manifest {
            gen: 1,
            logical_len: 100,
            src: "/ckpt/a_gen1.dmtcp".into(),
            chunks: vec![ChunkRef::whole("ra-100", 100)],
        };
        map_alias(&man, 50, 100);
    }

    #[test]
    fn put_chunk_dedups_and_resumes_torn_uploads() {
        let mut fs = Fs::new();
        let bytes = vec![9u8; 1000];
        let chunk = PChunk {
            id: "r0-1000".into(),
            len: 1000,
            data: ChunkData::Real(bytes.clone()),
        };
        let p = chunk_path(&chunk.id);
        assert!(matches!(put_chunk(&mut fs, &p, &chunk), Put::Wrote(1000)));
        assert!(matches!(put_chunk(&mut fs, &p, &chunk), Put::Deduped));
        // Tear the upload: only the missing tail goes back out.
        let torn = fs.get_mut(&p).expect("chunk exists");
        assert_eq!(torn.blob.truncate(300), 300);
        assert!(matches!(put_chunk(&mut fs, &p, &chunk), Put::Wrote(700)));
        assert_eq!(fs.read_all(&p).unwrap(), bytes);
    }

    /// Checkpoint images end with their own CRC-32; by the CRC residue
    /// property every such buffer of one length has the *same* CRC-32, so a
    /// CRC-only identity deduped distinct images into one chunk (restart
    /// then resurrected another generation's state). The FNV half of the id
    /// must keep them apart.
    #[test]
    fn self_checksummed_content_gets_distinct_ids() {
        let image = |fill: u8| {
            let mut m = vec![fill; 64];
            let c = szip::crc32(&m);
            m.extend_from_slice(&c.to_le_bytes());
            m
        };
        let (a, b) = (image(1), image(2));
        assert_eq!(
            szip::crc32(&a),
            szip::crc32(&b),
            "residue property: self-checksummed buffers share a CRC"
        );
        let id_of = |bytes: &[u8]| {
            let mut bl = Blob::new();
            bl.append_bytes(bytes);
            stored(&chunk_blob(&bl, 1 << 20)[0]).id.clone()
        };
        assert_ne!(id_of(&a), id_of(&b), "ids must still differ");
    }

    #[test]
    #[should_panic(expected = "chunk id collision")]
    fn colliding_id_with_different_content_is_refused() {
        let mut fs = Fs::new();
        let mk = |fill: u8| PChunk {
            id: "r0-4".into(),
            len: 4,
            data: ChunkData::Real(vec![fill; 4]),
        };
        let p = chunk_path("r0-4");
        assert!(matches!(put_chunk(&mut fs, &p, &mk(1)), Put::Wrote(4)));
        put_chunk(&mut fs, &p, &mk(2));
    }
}
