//! Per-tenant storage namespaces: byte quotas and retention policies.
//!
//! A multi-tenant daemon (`dmtcpd`) gives every session its own image
//! namespace under [`tenant_prefix`]. The store keeps a ledger per tenant:
//! commits into a tenant's namespace charge the physical bytes they stored
//! (chunks after dedup, plus the manifest), and when a generation expires
//! under the tenant's retention window its charge is credited back. The
//! ledger is an *admission-control* account, not exact disk usage —
//! content-addressed chunks shared across tenants are charged to whichever
//! tenant stored them first — which is the right bias for quotas: a tenant
//! can only be over-charged by bytes it actually caused to be written.
//!
//! Quotas are enforced by the service layer *before* a checkpoint is
//! issued ([`mtcp::ImageStore::commit`] has no error path; rejecting
//! mid-image would tear the generation). The store's job is to keep the
//! account current and answer [`over_quota`].

use oskit::world::World;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// `World::ext_slots` key holding the tenant table.
pub const TENANT_SLOT: &str = "ckptstore-tenants";

/// Storage policy for one tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Ledger ceiling in bytes; 0 means unlimited.
    pub quota_bytes: u64,
    /// Generations of each image kept for this tenant (overrides the
    /// store-wide [`crate::Config::retention`] inside its namespace).
    pub retention: u32,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            quota_bytes: 0,
            retention: 4,
        }
    }
}

/// One tenant's live account.
#[derive(Debug, Clone)]
pub struct TenantState {
    /// Policy in force.
    pub cfg: TenantConfig,
    /// Bytes currently charged to the tenant.
    pub used_bytes: u64,
    /// Small numeric id (registration order) used as the metrics label.
    pub id: u64,
    /// Charge per committed manifest, so expiry credits exactly what the
    /// commit charged.
    per_manifest: BTreeMap<String, u64>,
}

type Tenants = Rc<RefCell<BTreeMap<String, TenantState>>>;

fn table(w: &World) -> Option<Tenants> {
    w.ext_slots
        .get(TENANT_SLOT)
        .and_then(|b| b.downcast_ref::<Tenants>())
        .cloned()
}

/// Register (or re-register, replacing the policy of) tenant `name`.
/// Usage carries over across re-registration.
pub fn register_tenant(w: &mut World, name: &str, cfg: TenantConfig) {
    let t = match table(w) {
        Some(t) => t,
        None => {
            let t: Tenants = Rc::new(RefCell::new(BTreeMap::new()));
            w.ext_slots
                .insert(TENANT_SLOT.to_string(), Box::new(t.clone()));
            t
        }
    };
    let mut map = t.borrow_mut();
    let next_id = map.len() as u64;
    map.entry(name.to_string())
        .and_modify(|s| s.cfg = cfg.clone())
        .or_insert(TenantState {
            cfg,
            used_bytes: 0,
            id: next_id,
            per_manifest: BTreeMap::new(),
        });
}

/// Root of tenant `name`'s image namespace.
pub fn tenant_prefix(name: &str) -> String {
    format!("/ckpt/tenants/{name}")
}

/// Which tenant owns `path`, if it lies inside a tenant namespace.
pub fn tenant_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/ckpt/tenants/")?;
    let name = rest.split('/').next()?;
    (!name.is_empty()).then_some(name)
}

/// Bytes currently charged to tenant `name` (None if unregistered).
pub fn usage(w: &World, name: &str) -> Option<u64> {
    table(w)?.borrow().get(name).map(|s| s.used_bytes)
}

/// The tenant's registered policy, if any.
pub fn policy(w: &World, name: &str) -> Option<TenantConfig> {
    table(w)?.borrow().get(name).map(|s| s.cfg.clone())
}

/// Is the tenant's ledger at or above its quota? Unregistered tenants and
/// zero quotas are never over.
pub fn over_quota(w: &World, name: &str) -> bool {
    let Some(t) = table(w) else { return false };
    let map = t.borrow();
    let Some(s) = map.get(name) else { return false };
    s.cfg.quota_bytes > 0 && s.used_bytes >= s.cfg.quota_bytes
}

/// Retention window for an image at `path`: the owning tenant's policy
/// inside a tenant namespace, the store-wide default elsewhere.
pub(crate) fn retention_for(w: &World, path: &str, default: u32) -> u32 {
    let Some(name) = tenant_of(path) else {
        return default;
    };
    policy(w, name).map(|c| c.retention).unwrap_or(default)
}

/// Charge `bytes` stored on behalf of the commit that wrote `manifest`.
pub(crate) fn charge(w: &mut World, name: &str, manifest: &str, bytes: u64) {
    let Some(t) = table(w) else { return };
    let gauge = {
        let mut map = t.borrow_mut();
        let Some(s) = map.get_mut(name) else { return };
        *s.per_manifest.entry(manifest.to_string()).or_insert(0) += bytes;
        s.used_bytes += bytes;
        Some((s.id, s.used_bytes))
    };
    if let Some((id, used)) = gauge {
        w.obs
            .metrics
            .set_gauge("ckptstore.tenant_bytes", id, used as f64);
        w.obs.metrics.add("ckptstore.tenant_charged", id, bytes);
    }
}

/// Credit back whatever the commit of `manifest` charged (generation
/// expired under retention). Idempotent: a second credit is a no-op.
pub(crate) fn credit(w: &mut World, name: &str, manifest: &str) {
    let Some(t) = table(w) else { return };
    let gauge = {
        let mut map = t.borrow_mut();
        let Some(s) = map.get_mut(name) else { return };
        let Some(bytes) = s.per_manifest.remove(manifest) else {
            return;
        };
        s.used_bytes = s.used_bytes.saturating_sub(bytes);
        Some((s.id, s.used_bytes))
    };
    if let Some((id, used)) = gauge {
        w.obs
            .metrics
            .set_gauge("ckptstore.tenant_bytes", id, used as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskit::program::Registry;
    use oskit::HwSpec;

    #[test]
    fn namespace_parsing() {
        assert_eq!(
            tenant_of("/ckpt/tenants/acme/ckpt_1_gen2.dmtcp"),
            Some("acme")
        );
        assert_eq!(
            tenant_of(&format!("{}/img", tenant_prefix("t7"))),
            Some("t7")
        );
        assert_eq!(tenant_of("/ckpt/ckpt_1_gen2.dmtcp"), None);
        assert_eq!(tenant_of("/ckpt/tenants/"), None);
    }

    #[test]
    fn ledger_charges_and_credits() {
        let mut w = World::new(HwSpec::cluster(), 1, Registry::new());
        register_tenant(
            &mut w,
            "acme",
            TenantConfig {
                quota_bytes: 100,
                retention: 2,
            },
        );
        assert_eq!(usage(&w, "acme"), Some(0));
        assert!(!over_quota(&w, "acme"));
        charge(&mut w, "acme", "/m/gen1", 60);
        charge(&mut w, "acme", "/m/gen2", 50);
        assert_eq!(usage(&w, "acme"), Some(110));
        assert!(over_quota(&w, "acme"));
        credit(&mut w, "acme", "/m/gen1");
        credit(&mut w, "acme", "/m/gen1"); // idempotent
        assert_eq!(usage(&w, "acme"), Some(50));
        assert!(!over_quota(&w, "acme"));
        // Unregistered tenants never gate admission.
        assert!(!over_quota(&w, "ghost"));
        assert_eq!(usage(&w, "ghost"), None);
    }

    #[test]
    fn retention_follows_the_owning_tenant() {
        let mut w = World::new(HwSpec::cluster(), 1, Registry::new());
        register_tenant(
            &mut w,
            "acme",
            TenantConfig {
                quota_bytes: 0,
                retention: 9,
            },
        );
        let inside = format!("{}/ckpt_1_gen3.dmtcp", tenant_prefix("acme"));
        assert_eq!(retention_for(&w, &inside, 4), 9);
        assert_eq!(retention_for(&w, "/ckpt/ckpt_1_gen3.dmtcp", 4), 4);
        let unregistered = format!("{}/img", tenant_prefix("ghost"));
        assert_eq!(retention_for(&w, &unregistered, 4), 4);
    }
}
