//! Manifest and path scheme of the content-addressed store.
//!
//! Each node's store lives under [`oskit::fs::STORE_ROOT`] in its *local*
//! filesystem:
//!
//! ```text
//! /ckptstore/chunks/<id>            one file per unique chunk
//! /ckptstore/manifests/<image-key>  one file per checkpoint generation
//! ```
//!
//! A chunk id is `r<crc32>-<len>` for literal bytes and `v<crc32>-<len>`
//! for a virtual (accounted-but-unmaterialized) extent, with the CRC taken
//! over the extent's recipe metadata. The manifest is an ordered list of
//! chunk refs — concatenating the chunks in order reproduces the image blob
//! byte for byte. It is plain text so a human (or a test) can read it back.
//!
//! An entry may be a *slice ref* — `<id> <len> @<off>` — contributing `len`
//! bytes starting at byte `off` of the stored chunk instead of the whole
//! file. Slice refs are how incremental checkpoints alias clean regions of
//! the previous generation's image: the new manifest points into chunks the
//! store already holds, so an unchanged region costs no chunk I/O at all.
//! The sink composes slices when it maps an alias through a manifest that
//! itself contains slice refs, so chains stay one level deep.

use oskit::fs::STORE_ROOT;

/// First token of every manifest file.
pub const MANIFEST_MAGIC: &str = "CKPTMAN1";

/// One entry in a manifest: a chunk the image is assembled from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRef {
    /// Content-addressed chunk id (`r`/`v` prefix, CRC-32, length).
    pub id: String,
    /// Bytes this chunk contributes to the image.
    pub len: u64,
    /// Slice ref: byte offset within the stored chunk the contribution
    /// starts at. `None` means the whole chunk file (whose length is `len`).
    pub off: Option<u64>,
}

impl ChunkRef {
    /// A whole-chunk reference.
    pub fn whole(id: impl Into<String>, len: u64) -> ChunkRef {
        ChunkRef {
            id: id.into(),
            len,
            off: None,
        }
    }
}

/// A checkpoint generation: the ordered chunk list for one image file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint generation number parsed from the image path.
    pub gen: u32,
    /// Total image size in bytes (sum of chunk lens).
    pub logical_len: u64,
    /// The logical image path this manifest stands in for.
    pub src: String,
    /// Ordered chunk references.
    pub chunks: Vec<ChunkRef>,
}

impl Manifest {
    /// Serialize to the text format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!(
            "{} gen={} len={} src={}\n",
            MANIFEST_MAGIC, self.gen, self.logical_len, self.src
        );
        for c in &self.chunks {
            match c.off {
                Some(off) => out.push_str(&format!("{} {} @{}\n", c.id, c.len, off)),
                None => out.push_str(&format!("{} {}\n", c.id, c.len)),
            }
        }
        out.into_bytes()
    }

    /// Parse the text format; `None` on any malformation.
    pub fn decode(bytes: &[u8]) -> Option<Manifest> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        let head = lines.next()?;
        let mut fields = head.split(' ');
        if fields.next()? != MANIFEST_MAGIC {
            return None;
        }
        let mut gen = None;
        let mut logical_len = None;
        let mut src = None;
        for f in fields {
            let (k, v) = f.split_once('=')?;
            match k {
                "gen" => gen = Some(v.parse().ok()?),
                "len" => logical_len = Some(v.parse().ok()?),
                "src" => src = Some(v.to_string()),
                _ => return None,
            }
        }
        let mut chunks = Vec::new();
        for line in lines {
            let mut parts = line.split(' ');
            let id = parts.next()?;
            let len = parts.next()?.parse().ok()?;
            let off = match parts.next() {
                Some(tok) => Some(tok.strip_prefix('@')?.parse().ok()?),
                None => None,
            };
            if parts.next().is_some() {
                return None;
            }
            chunks.push(ChunkRef {
                id: id.to_string(),
                len,
                off,
            });
        }
        Some(Manifest {
            gen: gen?,
            logical_len: logical_len?,
            src: src?,
            chunks,
        })
    }
}

/// Store path of a chunk file.
pub fn chunk_path(id: &str) -> String {
    format!("{STORE_ROOT}/chunks/{id}")
}

/// Prefix under which all chunk files live.
pub fn chunks_prefix() -> String {
    format!("{STORE_ROOT}/chunks/")
}

/// Store path of the manifest standing in for a logical image path.
pub fn manifest_path(logical: &str) -> String {
    format!("{STORE_ROOT}/manifests/{}", logical.replace('/', "_"))
}

/// Prefix under which all manifests live.
pub fn manifests_prefix() -> String {
    format!("{STORE_ROOT}/manifests/")
}

/// Generation number embedded in an image path (`..._gen<N>.dmtcp`).
pub fn parse_gen(path: &str) -> Option<u32> {
    let at = path.rfind("_gen")?;
    let digits: String = path[at + 4..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// The same logical path pointed at a different generation.
pub fn with_gen(path: &str, gen: u32) -> Option<String> {
    let cur = parse_gen(path)?;
    Some(path.replace(&format!("_gen{cur}"), &format!("_gen{gen}")))
}

/// Virtual pid of the writing process embedded in an image path
/// (`.../ckpt_<vpid>_gen<N>.dmtcp`).
pub fn parse_vpid(path: &str) -> Option<u32> {
    let name = path.rsplit('/').next()?;
    let rest = name.strip_prefix("ckpt_")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips() {
        let m = Manifest {
            gen: 3,
            logical_len: 1234,
            src: "/shared/ckpt/ckpt_40001_gen3.dmtcp".into(),
            chunks: vec![
                ChunkRef::whole("rdeadbeef-1000", 1000),
                ChunkRef::whole("v00c0ffee-234", 234),
            ],
        };
        assert_eq!(Manifest::decode(&m.encode()), Some(m));
    }

    #[test]
    fn slice_refs_round_trip() {
        let m = Manifest {
            gen: 4,
            logical_len: 700,
            src: "/shared/ckpt/ckpt_40001_gen4.dmtcp".into(),
            chunks: vec![
                ChunkRef::whole("rdeadbeef-500", 500),
                ChunkRef {
                    id: "rcafe-4096".into(),
                    len: 200,
                    off: Some(1024),
                },
            ],
        };
        let text = String::from_utf8(m.encode()).unwrap();
        assert!(text.contains("rcafe-4096 200 @1024\n"), "got: {text}");
        assert_eq!(Manifest::decode(&m.encode()), Some(m));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Manifest::decode(b"not a manifest"), None);
        assert_eq!(Manifest::decode(b"CKPTMAN1 gen=x len=1 src=/a\n"), None);
        assert_eq!(Manifest::decode(&[0xff, 0xfe]), None);
        // A malformed slice ref must not decode.
        assert_eq!(
            Manifest::decode(b"CKPTMAN1 gen=1 len=1 src=/a\nrff-1 1 1024\n"),
            None
        );
        assert_eq!(
            Manifest::decode(b"CKPTMAN1 gen=1 len=1 src=/a\nrff-1 1 @x\n"),
            None
        );
    }

    #[test]
    fn gen_parsing_and_rewrite() {
        let p = "/ckpt/ckpt_40001_gen12.dmtcp";
        assert_eq!(parse_gen(p), Some(12));
        assert_eq!(
            with_gen(p, 3).as_deref(),
            Some("/ckpt/ckpt_40001_gen3.dmtcp")
        );
        assert_eq!(parse_gen("/ckpt/no-generation"), None);
    }

    #[test]
    fn paths_are_node_local() {
        assert!(manifest_path("/shared/ckpt/a_gen1.dmtcp").starts_with("/ckptstore/manifests/"));
        assert!(!chunk_path("rff-1").starts_with(oskit::fs::SHARED_MOUNT));
    }
}
