//! `dmtcpd` — a long-lived multi-tenant checkpoint service.
//!
//! The paper's coordinator serves exactly one computation: one port, one
//! barrier state machine, one restart script. This crate multiplexes many
//! independent computations over a single service daemon:
//!
//! * a **session registry** with admission control — at most
//!   `max_sessions` concurrent sessions of at most `max_procs_per_session`
//!   participants each, refusals carried as typed
//!   [`dmtcp::proto::RejectReason`] codes on the wire;
//! * **sharded root coordinators** — N independent [`dmtcp::Coordinator`]
//!   instances on distinct ports, sessions hash-assigned (`sid % shards`),
//!   each shard reusing the hierarchical relay tier unchanged (shard root
//!   ports are spaced two apart so every shard's `root_port + 1` relay
//!   port is collision-free);
//! * **per-tenant storage namespaces** — every session's images live under
//!   [`ckptstore::tenant::tenant_prefix`], where the tenant's byte quota
//!   and GC retention policy govern them.
//!
//! The service conversation (open/accept/reject/close/checkpoint) is
//! carried as framed [`dmtcp::proto::Msg`] service messages through the
//! daemon's request mailbox — the simulated stand-in for the daemon's
//! listening socket; barrier traffic stays on each shard's own coordinator
//! socket, untouched. [`Client`] mirrors the [`dmtcp::Session`] API, so a
//! computation ports from the single-session world to dmtcpd by swapping
//! the handle type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dmtcp::coord::{coord_shared_for, stage, Coordinator, GenStat};
use dmtcp::launch::{launch_under_dmtcp, Options, Topology};
use dmtcp::proto::{frame, FrameBuf, Msg, RejectReason};
use dmtcp::session::CkptError;
use oskit::program::{Program, Step};
use oskit::world::{NodeId, OsSim, Pid, Tid, World};
use oskit::Kernel;
use simkit::Nanos;
use std::collections::{BTreeMap, VecDeque};

/// Default service port (distinct from every coordinator port).
pub const SVC_PORT: u16 = 7700;

/// Default base of the shard root-port range; shard `k` listens on
/// `base + 2k` and its relay tier on `base + 2k + 1`.
pub const SHARD_PORT_BASE: u16 = 7800;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Node hosting the daemon and every shard coordinator.
    pub node: NodeId,
    /// Service port (the registry mailbox key, not a coordinator port).
    pub port: u16,
    /// Number of shard coordinators.
    pub shards: u16,
    /// First shard root port; shard `k` gets `shard_port_base + 2k`.
    pub shard_port_base: u16,
    /// Admission ceiling on concurrently open sessions.
    pub max_sessions: u32,
    /// Admission ceiling on participants per session.
    pub max_procs_per_session: u32,
    /// Quota installed for tenants not already registered with
    /// [`ckptstore::tenant::register_tenant`] (0 = unlimited).
    pub default_quota_bytes: u64,
    /// Retention installed for tenants not already registered.
    pub default_retention: u32,
    /// Topology every session launches under (per-shard relay tier when
    /// hierarchical).
    pub topology: Topology,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            node: NodeId(0),
            port: SVC_PORT,
            shards: 4,
            shard_port_base: SHARD_PORT_BASE,
            max_sessions: 128,
            max_procs_per_session: 64,
            default_quota_bytes: 0,
            default_retention: 4,
            topology: Topology::Flat,
        }
    }
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct SessionRec {
    /// Session id (dense, never reused within a daemon lifetime).
    pub sid: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Participant ceiling the session was admitted with.
    pub procs: u32,
    /// Shard index (`sid % shards`).
    pub shard: u16,
    /// The shard's root coordinator port.
    pub shard_port: u16,
    /// Image directory (inside the tenant's namespace).
    pub dir: String,
}

/// World-shared daemon state: the request mailbox (the daemon's "listening
/// socket"), the reply queue, and the session registry — one slot per
/// daemon port, so several daemons can coexist in one world.
#[derive(Debug, Default)]
pub struct SvcShared {
    /// Daemon process, for waking on mailbox posts.
    pub daemon_pid: Option<Pid>,
    /// Framed service requests awaiting the daemon.
    pub inbox: VecDeque<Vec<u8>>,
    /// Framed service replies awaiting clients (requests are processed in
    /// order and clients wait synchronously, so a FIFO pairs them up).
    pub replies: VecDeque<Vec<u8>>,
    /// Open sessions by sid.
    pub sessions: BTreeMap<u64, SessionRec>,
    /// Shard coordinator pids by shard index.
    pub shard_pids: Vec<Pid>,
    /// Sessions ever admitted (sid allocator).
    pub admitted: u64,
}

fn svc_slot(port: u16) -> String {
    format!("dmtcpd-shared:{port}")
}

/// Access (creating if absent) the daemon state for the daemon on `port`.
pub fn svc_shared(w: &mut World, port: u16) -> &mut SvcShared {
    let slot = w
        .ext_slots
        .entry(svc_slot(port))
        .or_insert_with(|| Box::new(SvcShared::default()));
    slot.downcast_mut::<SvcShared>()
        .expect("slot holds SvcShared")
}

/// Root coordinator port of shard `k` under `cfg`.
pub fn shard_root_port(cfg: &DaemonConfig, shard: u16) -> u16 {
    cfg.shard_port_base + 2 * shard
}

/// The daemon program: drains the request mailbox, runs admission control,
/// and forwards checkpoint requests to the owning shard.
struct DaemonProg {
    cfg: DaemonConfig,
    lfd: oskit::Fd,
}

impl DaemonProg {
    fn reject(&self, k: &mut Kernel<'_>, reason: RejectReason, detail: String) {
        k.obs()
            .metrics
            .inc("svc.sessions_rejected", reason as u8 as u64);
        let port = self.cfg.port;
        svc_shared(k.w, port)
            .replies
            .push_back(frame(&Msg::SessionRejected(reason as u8, detail)));
    }

    fn handle(&mut self, k: &mut Kernel<'_>, msg: Msg) {
        match msg {
            Msg::OpenSession(tenant, procs) => self.open_session(k, tenant, procs),
            Msg::CloseSession(sid) => self.close_session(k, sid),
            Msg::SessionCkpt(sid) => self.session_ckpt(k, sid),
            other => {
                // Service mailbox speaks only service frames; anything else
                // is a client bug worth surfacing, not crashing over.
                k.obs().metrics.inc("svc.unexpected_frames", 0);
                k.trace_with("dmtcpd", || {
                    format!("unexpected frame {}", dmtcp::proto::msg_name(&other))
                });
            }
        }
    }

    fn open_session(&mut self, k: &mut Kernel<'_>, tenant: String, procs: u32) {
        if tenant.is_empty() || procs == 0 {
            return self.reject(
                k,
                RejectReason::BadRequest,
                "tenant name and proc count must be non-empty".into(),
            );
        }
        if procs > self.cfg.max_procs_per_session {
            return self.reject(
                k,
                RejectReason::TooManyProcs,
                format!("{procs} procs > limit {}", self.cfg.max_procs_per_session),
            );
        }
        let open = svc_shared(k.w, self.cfg.port).sessions.len() as u32;
        if open >= self.cfg.max_sessions {
            return self.reject(
                k,
                RejectReason::SessionsFull,
                format!("{open} sessions open, limit {}", self.cfg.max_sessions),
            );
        }
        if ckptstore::tenant::over_quota(k.w, &tenant) {
            let used = ckptstore::tenant::usage(k.w, &tenant).unwrap_or(0);
            return self.reject(
                k,
                RejectReason::QuotaExceeded,
                format!("tenant {tenant} ledger at {used} bytes"),
            );
        }
        if ckptstore::tenant::policy(k.w, &tenant).is_none() {
            ckptstore::tenant::register_tenant(
                k.w,
                &tenant,
                ckptstore::tenant::TenantConfig {
                    quota_bytes: self.cfg.default_quota_bytes,
                    retention: self.cfg.default_retention,
                },
            );
        }
        let cfg = self.cfg.clone();
        let shared = svc_shared(k.w, cfg.port);
        let sid = shared.admitted + 1;
        shared.admitted = sid;
        let shard = (sid % cfg.shards as u64) as u16;
        let shard_port = shard_root_port(&cfg, shard);
        let dir = format!("{}/s{sid}", ckptstore::tenant::tenant_prefix(&tenant));
        shared.sessions.insert(
            sid,
            SessionRec {
                sid,
                tenant: tenant.clone(),
                procs,
                shard,
                shard_port,
                dir: dir.clone(),
            },
        );
        let open_now = shared.sessions.len() as u64;
        shared
            .replies
            .push_back(frame(&Msg::SessionAccepted(sid, shard_port, dir)));
        let now = k.now();
        let obs = k.obs();
        obs.metrics.inc("svc.sessions_admitted", sid);
        obs.metrics
            .set_gauge("svc.sessions_open", 0, open_now as f64);
        obs.journal.record(
            now,
            obs::journal::CLASS_STAGE,
            "svc.open",
            None,
            &[
                ("sid", sid),
                ("shard", shard as u64),
                ("procs", procs as u64),
            ],
            &tenant,
        );
    }

    fn close_session(&mut self, k: &mut Kernel<'_>, sid: u64) {
        let removed = svc_shared(k.w, self.cfg.port).sessions.remove(&sid);
        let open_now = svc_shared(k.w, self.cfg.port).sessions.len() as u64;
        let now = k.now();
        let obs = k.obs();
        if removed.is_some() {
            obs.metrics
                .set_gauge("svc.sessions_open", 0, open_now as f64);
            obs.journal.record(
                now,
                obs::journal::CLASS_STAGE,
                "svc.close",
                None,
                &[("sid", sid)],
                "",
            );
        } else {
            obs.metrics.inc("svc.unknown_session", sid);
        }
    }

    fn session_ckpt(&mut self, k: &mut Kernel<'_>, sid: u64) {
        let Some(rec) = svc_shared(k.w, self.cfg.port).sessions.get(&sid).cloned() else {
            k.obs().metrics.inc("svc.unknown_session", sid);
            return self.reject(k, RejectReason::BadRequest, format!("no session {sid}"));
        };
        if ckptstore::tenant::over_quota(k.w, &rec.tenant) {
            let used = ckptstore::tenant::usage(k.w, &rec.tenant).unwrap_or(0);
            let now = k.now();
            let obs = k.obs();
            obs.journal.record(
                now,
                obs::journal::CLASS_STAGE,
                "svc.quota_refusal",
                None,
                &[("sid", sid), ("used", used)],
                &rec.tenant,
            );
            return self.reject(
                k,
                RejectReason::QuotaExceeded,
                format!("tenant {} ledger at {used} bytes", rec.tenant),
            );
        }
        let now = k.now();
        let obs = k.obs();
        obs.metrics.inc("svc.ckpt_requests", sid);
        obs.journal.record(
            now,
            obs::journal::CLASS_STAGE,
            "svc.ckpt_request",
            None,
            &[("sid", sid), ("shard", rec.shard as u64)],
            &rec.tenant,
        );
        dmtcp::coord::request_checkpoint_on(k.w, k.sim, rec.shard_port);
    }
}

impl Program for DaemonProg {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.lfd < 0 {
            // Bind the service port (reserving it against coordinators) and
            // register with the shared slot so mailbox posts can wake us.
            let (fd, _) = k.listen_on(self.cfg.port).expect("service port free");
            self.lfd = fd;
            let pid = k.getpid_real();
            svc_shared(k.w, self.cfg.port).daemon_pid = Some(pid);
        }
        // Drain stray connection attempts; the WouldBlock also registers
        // this thread's waker for the Step::Block below.
        while let Ok(fd) = k.accept(self.lfd) {
            k.close(fd).ok();
        }
        while let Some(bytes) = svc_shared(k.w, self.cfg.port).inbox.pop_front() {
            let mut fb = FrameBuf::new();
            fb.feed(&bytes);
            loop {
                match fb.pop() {
                    Ok(Some(msg)) => self.handle(k, msg),
                    Ok(None) => break,
                    Err(_) => {
                        k.obs().metrics.inc("svc.malformed_frames", 0);
                        break;
                    }
                }
            }
        }
        Step::Block
    }

    fn tag(&self) -> &'static str {
        "dmtcpd"
    }

    fn save(&self) -> Vec<u8> {
        // Control plane: never traced, never checkpointed.
        Vec::new()
    }
}

/// A running daemon: the handle host code keeps (mirrors
/// [`dmtcp::Session`]'s role for the single-computation path).
#[derive(Debug, Clone)]
pub struct Dmtcpd {
    /// Configuration in force.
    pub cfg: DaemonConfig,
    /// Daemon process.
    pub daemon_pid: Pid,
    /// Shard coordinator pids, by shard index.
    pub shard_pids: Vec<Pid>,
}

impl Dmtcpd {
    /// Start the daemon and its shard coordinators on `cfg.node`.
    pub fn start(w: &mut World, sim: &mut OsSim, cfg: DaemonConfig) -> Dmtcpd {
        assert!(cfg.shards > 0, "a daemon needs at least one shard");
        let mut shard_pids = Vec::new();
        for shard in 0..cfg.shards {
            let port = shard_root_port(&cfg, shard);
            let pid = w.spawn(
                sim,
                cfg.node,
                "dmtcp_coordinator",
                Box::new(Coordinator::new(port, None)),
                Pid(1),
                BTreeMap::new(),
            );
            shard_pids.push(pid);
        }
        let daemon_pid = w.spawn(
            sim,
            cfg.node,
            "dmtcpd",
            Box::new(DaemonProg {
                cfg: cfg.clone(),
                lfd: -1,
            }),
            Pid(1),
            BTreeMap::new(),
        );
        // Let the shards bind and the daemon register before clients call.
        sim.run_until(w, sim.now() + Nanos::from_millis(1));
        svc_shared(w, cfg.port).shard_pids = shard_pids.clone();
        Dmtcpd {
            cfg,
            daemon_pid,
            shard_pids,
        }
    }

    /// Open a session for `tenant` expecting up to `procs` participants.
    pub fn open(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        tenant: &str,
        procs: u32,
    ) -> Result<Client, OpenError> {
        post(
            w,
            sim,
            self.cfg.port,
            &Msg::OpenSession(tenant.into(), procs),
        );
        match wait_reply(w, sim, self.cfg.port) {
            Msg::SessionAccepted(sid, shard_port, dir) => Ok(Client {
                daemon: self.clone(),
                sid,
                tenant: tenant.to_string(),
                opts: Options::builder()
                    .coord(self.cfg.node)
                    .coord_port(shard_port)
                    .ckpt_dir(dir)
                    .topology(self.cfg.topology)
                    .build(),
            }),
            Msg::SessionRejected(code, detail) => Err(OpenError {
                reason: RejectReason::from_code(code),
                detail,
            }),
            other => panic!("daemon answered OpenSession with {other:?}"),
        }
    }

    /// Registry snapshot (sids of currently open sessions).
    pub fn open_sessions(&self, w: &mut World) -> Vec<u64> {
        svc_shared(w, self.cfg.port)
            .sessions
            .keys()
            .copied()
            .collect()
    }
}

/// Admission refusal, decoded from [`Msg::SessionRejected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenError {
    /// Typed reason (None when the daemon is newer than this client and
    /// sent a code we do not know).
    pub reason: Option<RejectReason>,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session rejected ({:?}): {}", self.reason, self.detail)
    }
}

impl std::error::Error for OpenError {}

/// Why a service-path checkpoint returned no completed generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvcCkptError {
    /// The daemon refused the request (quota, unknown session).
    Refused(OpenError),
    /// The shard's protocol failed ([`CkptError`] semantics unchanged).
    Ckpt(CkptError),
}

impl std::fmt::Display for SvcCkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SvcCkptError::Refused(e) => write!(f, "refused: {e}"),
            SvcCkptError::Ckpt(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SvcCkptError {}

/// Post one framed service request into the daemon's mailbox and wake it.
fn post(w: &mut World, sim: &mut OsSim, port: u16, msg: &Msg) {
    let shared = svc_shared(w, port);
    shared.inbox.push_back(frame(msg));
    if let Some(pid) = shared.daemon_pid {
        w.wake(sim, (pid, Tid(0)));
    }
}

/// Run the simulation until the daemon's reply FIFO yields a frame.
fn wait_reply(w: &mut World, sim: &mut OsSim, port: u16) -> Msg {
    let mut budget = 100_000u32;
    loop {
        if let Some(bytes) = svc_shared(w, port).replies.pop_front() {
            let mut fb = FrameBuf::new();
            fb.feed(&bytes);
            return fb
                .pop()
                .expect("daemon writes well-formed frames")
                .expect("reply frame complete");
        }
        assert!(sim.step(w), "event queue drained awaiting daemon reply");
        budget -= 1;
        assert!(budget > 0, "daemon never replied");
    }
}

/// A client handle for one admitted session — the dmtcpd counterpart of
/// [`dmtcp::Session`]. Launch, checkpoint, and restart all operate against
/// the session's shard coordinator and tenant namespace.
#[derive(Debug, Clone)]
pub struct Client {
    /// The daemon that admitted this session.
    pub daemon: Dmtcpd,
    /// Session id.
    pub sid: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Launch options pinned to the session's shard and image directory
    /// (what [`dmtcp::Session::opts`] is to the single-session path).
    pub opts: Options,
}

impl Client {
    /// The shard root port this session's barrier traffic answers to.
    pub fn shard_port(&self) -> u16 {
        self.opts.coord_port
    }

    /// `dmtcp_checkpoint <program>` inside this session.
    pub fn launch(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        node: NodeId,
        cmd: &str,
        prog: Box<dyn Program>,
    ) -> Pid {
        launch_under_dmtcp(w, sim, node, cmd, prog, &self.opts)
    }

    /// Asynchronous checkpoint request, carried as a [`Msg::SessionCkpt`]
    /// service frame (the `dmtcp_command --checkpoint` analogue).
    pub fn request_checkpoint(&self, w: &mut World, sim: &mut OsSim) {
        post(w, sim, self.daemon.cfg.port, &Msg::SessionCkpt(self.sid));
    }

    /// Request a checkpoint and run the simulation until the session's
    /// shard settles it — completed (stats returned), aborted, out of
    /// budget, or refused by the daemon (quota).
    pub fn checkpoint_and_wait(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        max_events: u64,
    ) -> Result<GenStat, SvcCkptError> {
        let port = self.shard_port();
        let before = coord_shared_for(w, port).gen_stats.len();
        self.request_checkpoint(w, sim);
        let fired_start = sim.events_fired();
        loop {
            // A refusal arrives on the service FIFO instead of a barrier.
            if let Some(bytes) = svc_shared(w, self.daemon.cfg.port).replies.pop_front() {
                let mut fb = FrameBuf::new();
                fb.feed(&bytes);
                match fb.pop() {
                    Ok(Some(Msg::SessionRejected(code, detail))) => {
                        return Err(SvcCkptError::Refused(OpenError {
                            reason: RejectReason::from_code(code),
                            detail,
                        }));
                    }
                    other => panic!("unexpected service reply {other:?}"),
                }
            }
            if !sim.step(w) {
                return Err(SvcCkptError::Ckpt(CkptError::BudgetExhausted {
                    events: sim.events_fired() - fired_start,
                }));
            }
            let settled = {
                let cs = coord_shared_for(w, port);
                cs.gen_stats.len() > before
                    && cs
                        .gen_stats
                        .last()
                        .map(|g| g.aborted || g.releases.contains_key(&stage::REFILLED))
                        .unwrap_or(false)
            };
            if settled {
                let gs = coord_shared_for(w, port)
                    .gen_stats
                    .last()
                    .expect("pushed")
                    .clone();
                if gs.aborted {
                    return Err(SvcCkptError::Ckpt(CkptError::Aborted {
                        gen: gs.gen,
                        stage: dmtcp::session::first_missing_stage(&gs),
                    }));
                }
                return Ok(gs);
            }
            if sim.events_fired() - fired_start >= max_events {
                return Err(SvcCkptError::Ckpt(CkptError::BudgetExhausted {
                    events: max_events,
                }));
            }
        }
    }

    /// The session's most recent generation stats.
    pub fn last_gen_stat(&self, w: &mut World) -> Option<GenStat> {
        coord_shared_for(w, self.shard_port())
            .gen_stats
            .last()
            .cloned()
    }

    /// Restart this session's newest usable generation (whole-generation
    /// fallback, same semantics as [`dmtcp::Session::restart_resilient`]).
    pub fn restart_resilient(
        &self,
        w: &mut World,
        sim: &mut OsSim,
        remap: &dyn Fn(&str) -> NodeId,
    ) -> Result<dmtcp::session::RestartOutcome, dmtcp::session::RestartError> {
        self.as_session(w).restart_resilient(w, sim, remap)
    }

    /// SIGKILL this session's computation only (simulated failure).
    /// Unlike [`dmtcp::Session::kill_computation`] — which predates
    /// multi-tenancy and kills every traced process in the world — this
    /// selects by the root port the processes answer to, so co-tenant
    /// computations on other shards are untouched.
    pub fn kill_computation(&self, w: &mut World, sim: &mut OsSim) {
        let port = self.shard_port();
        let victims: Vec<Pid> = w
            .procs
            .iter_mut()
            .filter(|(_, p)| p.alive())
            .filter_map(|(pid, p)| {
                let h = p.ext.as_mut()?.downcast_mut::<dmtcp::hijack::Hijack>()?;
                (h.root_port == port).then_some(*pid)
            })
            .collect();
        for pid in victims {
            w.signal(sim, pid, oskit::proc::sig::SIGKILL);
        }
        sim.run_until(w, sim.now() + Nanos::from_millis(1));
    }

    /// Tear the session down (frees its registry slot; images persist per
    /// the tenant's retention policy).
    pub fn close(&self, w: &mut World, sim: &mut OsSim) {
        post(w, sim, self.daemon.cfg.port, &Msg::CloseSession(self.sid));
        // Let the daemon process the teardown.
        sim.run_until(w, sim.now() + Nanos::from_millis(1));
    }

    /// View this session as a [`dmtcp::Session`] (shared coordinator
    /// machinery; useful for helpers that take the session type).
    pub fn as_session(&self, w: &mut World) -> dmtcp::Session {
        let shard = svc_shared(w, self.daemon.cfg.port)
            .sessions
            .get(&self.sid)
            .map(|r| r.shard as usize)
            .unwrap_or(0);
        dmtcp::Session {
            opts: self.opts.clone(),
            coord_pid: self.daemon.shard_pids[shard],
        }
    }
}
