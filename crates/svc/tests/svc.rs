//! dmtcpd integration: admission control, shard isolation, per-session
//! observability namespacing, quotas, and restart through the service.

use dmtcp::proto::RejectReason;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};
use svc::{DaemonConfig, Dmtcpd, SvcCkptError};

/// A counter with memory ballast: computes to a target, then records its
/// count in `/shared/result_<id>`. Honest app — never mentions DMTCP.
struct Worker {
    pc: u8,
    id: u64,
    count: u64,
    target: u64,
}
simkit::impl_snap!(struct Worker { pc, id, count, target });

impl Worker {
    fn new(id: u64, target: u64) -> Self {
        Worker {
            pc: 0,
            id,
            count: 0,
            target,
        }
    }
}

impl Program for Worker {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            k.mmap_synthetic(
                "ballast",
                512 << 10,
                0xb0b0 ^ self.id,
                oskit::mem::FillProfile::Random,
            );
            self.pc = 1;
        }
        if self.count < self.target {
            self.count += 1;
            return Step::Compute(50_000);
        }
        let fd = k
            .open(&format!("/shared/result_{}", self.id), true)
            .expect("result file");
        k.write(fd, self.count.to_string().as_bytes())
            .expect("write");
        Step::Exit(0)
    }
    fn tag(&self) -> &'static str {
        "svc-worker"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<Worker>("svc-worker");
    r
}

fn cluster(nodes: usize) -> (World, OsSim) {
    (World::new(HwSpec::cluster(), nodes, registry()), Sim::new())
}

const EV: u64 = 8_000_000;

#[test]
fn admission_control_is_typed_and_slots_recycle() {
    let (mut w, mut sim) = cluster(2);
    let d = Dmtcpd::start(
        &mut w,
        &mut sim,
        DaemonConfig {
            shards: 2,
            max_sessions: 2,
            max_procs_per_session: 4,
            ..DaemonConfig::default()
        },
    );
    let a = d.open(&mut w, &mut sim, "acme", 2).expect("admitted");
    let b = d.open(&mut w, &mut sim, "bolt", 2).expect("admitted");
    assert_ne!(a.sid, b.sid);
    assert_ne!(
        a.shard_port(),
        b.shard_port(),
        "hash-assigned to distinct shards"
    );

    // Registry full → typed SessionsFull.
    let e = d.open(&mut w, &mut sim, "crux", 1).expect_err("full");
    assert_eq!(e.reason, Some(RejectReason::SessionsFull));

    // Close one and the slot is reusable.
    b.close(&mut w, &mut sim);
    assert_eq!(d.open_sessions(&mut w), vec![a.sid]);
    let c = d.open(&mut w, &mut sim, "crux", 1).expect("slot freed");
    assert_eq!(d.open_sessions(&mut w).len(), 2);

    // Oversized and malformed requests get their own reasons.
    let e = d.open(&mut w, &mut sim, "dent", 9).expect_err("too big");
    assert_eq!(e.reason, Some(RejectReason::TooManyProcs));
    a.close(&mut w, &mut sim);
    let e = d.open(&mut w, &mut sim, "", 1).expect_err("bad request");
    assert_eq!(e.reason, Some(RejectReason::BadRequest));
    let e = d
        .open(&mut w, &mut sim, "dent", 0)
        .expect_err("bad request");
    assert_eq!(e.reason, Some(RejectReason::BadRequest));
    c.close(&mut w, &mut sim);
    assert!(d.open_sessions(&mut w).is_empty());
}

#[test]
fn sessions_checkpoint_on_their_own_shards_without_observable_bleed() {
    let (mut w, mut sim) = cluster(3);
    w.obs.journal.enable(obs::journal::CLASS_STAGE);
    let d = Dmtcpd::start(
        &mut w,
        &mut sim,
        DaemonConfig {
            shards: 2,
            ..DaemonConfig::default()
        },
    );
    let a = d.open(&mut w, &mut sim, "acme", 4).expect("admitted");
    let b = d.open(&mut w, &mut sim, "bolt", 4).expect("admitted");
    a.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "worker",
        Box::new(Worker::new(1, 4000)),
    );
    b.launch(
        &mut w,
        &mut sim,
        NodeId(2),
        "worker",
        Box::new(Worker::new(2, 4000)),
    );
    dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_millis(30));

    // Checkpoint tenant A twice, tenant B once.
    let ga1 = a.checkpoint_and_wait(&mut w, &mut sim, EV).expect("a gen1");
    let ga2 = a.checkpoint_and_wait(&mut w, &mut sim, EV).expect("a gen2");
    let gb1 = b.checkpoint_and_wait(&mut w, &mut sim, EV).expect("b gen1");
    assert_eq!((ga1.gen, ga2.gen, gb1.gen), (1, 2, 1));

    // Shard isolation: each shard's barrier history is its own.
    let a_stats = dmtcp::coord::coord_shared_for(&mut w, a.shard_port())
        .gen_stats
        .len();
    let b_stats = dmtcp::coord::coord_shared_for(&mut w, b.shard_port())
        .gen_stats
        .len();
    assert_eq!((a_stats, b_stats), (2, 1));

    // Images land in per-tenant namespaces.
    assert_eq!(ckptstore::tenant::tenant_of(&a.opts.ckpt_dir), Some("acme"));
    assert_eq!(ckptstore::tenant::tenant_of(&b.opts.ckpt_dir), Some("bolt"));

    // Per-session metrics: checkpoint requests are labeled by sid, and no
    // third session ever shows up.
    assert_eq!(w.obs.metrics.counter("svc.ckpt_requests", a.sid), 2);
    assert_eq!(w.obs.metrics.counter("svc.ckpt_requests", b.sid), 1);
    assert_eq!(
        w.obs.metrics.counter_labels("svc.ckpt_requests"),
        vec![a.sid, b.sid]
    );

    // Journal namespacing: every svc event names exactly one session, and
    // the tenant detail always matches that session — no cross-tenant
    // events in either direction.
    let mut svc_events = 0;
    for ev in w.obs.journal.events() {
        if !ev.kind.starts_with("svc.") {
            continue;
        }
        svc_events += 1;
        let sid = ev.num("sid").expect("svc events carry a sid");
        if !ev.detail.is_empty() {
            let expect = if sid == a.sid { "acme" } else { "bolt" };
            assert_eq!(ev.detail, expect, "cross-tenant event: {}", ev.describe());
        }
        assert!(
            sid == a.sid || sid == b.sid,
            "unknown sid in {}",
            ev.describe()
        );
    }
    assert!(svc_events >= 5, "open x2 + ckpt x3 journal events expected");
}

#[test]
fn victim_session_restarts_while_the_other_keeps_its_generation() {
    let (mut w, mut sim) = cluster(3);
    let d = Dmtcpd::start(
        &mut w,
        &mut sim,
        DaemonConfig {
            shards: 2,
            ..DaemonConfig::default()
        },
    );
    let a = d.open(&mut w, &mut sim, "acme", 4).expect("admitted");
    let b = d.open(&mut w, &mut sim, "bolt", 4).expect("admitted");
    a.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "worker",
        Box::new(Worker::new(1, 3000)),
    );
    b.launch(
        &mut w,
        &mut sim,
        NodeId(2),
        "worker",
        Box::new(Worker::new(2, 3000)),
    );
    dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let ga = a.checkpoint_and_wait(&mut w, &mut sim, EV).expect("a gen1");
    let gb = b.checkpoint_and_wait(&mut w, &mut sim, EV).expect("b gen1");

    // Kill tenant A's computation; B is untouched.
    a.kill_computation(&mut w, &mut sim);
    let out = a
        .restart_resilient(&mut w, &mut sim, &|_| NodeId(1))
        .expect("restartable");
    assert_eq!(out.gen, ga.gen);
    dmtcp::Session::wait_restart_done_on(&mut w, &mut sim, a.shard_port(), ga.gen, EV);

    // Both computations run to completion with correct answers.
    dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_millis(700));
    let read = |w: &World, id: u64| {
        w.shared_fs
            .read_all(&format!("/shared/result_{id}"))
            .ok()
            .map(|b| String::from_utf8(b).unwrap())
    };
    assert_eq!(
        read(&w, 1).as_deref(),
        Some("3000"),
        "restarted tenant finishes"
    );
    assert_eq!(
        read(&w, 2).as_deref(),
        Some("3000"),
        "bystander tenant finishes"
    );
    // B's shard never saw A's crash: its only generation is still gb.
    let b_stats = dmtcp::coord::coord_shared_for(&mut w, b.shard_port())
        .gen_stats
        .clone();
    assert_eq!(b_stats.len(), 1);
    assert_eq!(b_stats[0].gen, gb.gen);
    assert!(!b_stats[0].aborted);
}

#[test]
fn quota_exhaustion_refuses_checkpoints_and_admission() {
    let (mut w, mut sim) = cluster(2);
    ckptstore::install(&mut w, ckptstore::Config::default());
    // A quota small enough that the first checkpoint exhausts it.
    ckptstore::tenant::register_tenant(
        &mut w,
        "acme",
        ckptstore::tenant::TenantConfig {
            quota_bytes: 4 << 10,
            retention: 4,
        },
    );
    let d = Dmtcpd::start(
        &mut w,
        &mut sim,
        DaemonConfig {
            shards: 1,
            ..DaemonConfig::default()
        },
    );
    let a = d
        .open(&mut w, &mut sim, "acme", 2)
        .expect("under quota at open");
    a.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "worker",
        Box::new(Worker::new(1, 50_000)),
    );
    dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_millis(20));

    let g1 = a
        .checkpoint_and_wait(&mut w, &mut sim, EV)
        .expect("first fits");
    assert_eq!(g1.gen, 1);
    let used = ckptstore::tenant::usage(&w, "acme").expect("ledger live");
    assert!(
        used > 4 << 10,
        "checkpoint charged the tenant (used {used})"
    );

    // Ledger over quota: the next checkpoint is refused with a typed code,
    // and no new generation starts on the shard.
    let err = a
        .checkpoint_and_wait(&mut w, &mut sim, EV)
        .expect_err("over quota");
    match err {
        SvcCkptError::Refused(e) => {
            assert_eq!(e.reason, Some(RejectReason::QuotaExceeded))
        }
        other => panic!("expected a quota refusal, got {other}"),
    }
    assert_eq!(
        dmtcp::coord::coord_shared_for(&mut w, a.shard_port())
            .gen_stats
            .len(),
        1
    );

    // Admission of new sessions for the exhausted tenant is refused too;
    // other tenants are unaffected.
    let e = d
        .open(&mut w, &mut sim, "acme", 1)
        .expect_err("tenant broke");
    assert_eq!(e.reason, Some(RejectReason::QuotaExceeded));
    d.open(&mut w, &mut sim, "bolt", 1)
        .expect("other tenants fine");
}
