//! Tenant-isolation fault cells: a shard coordinator dies mid-checkpoint.
//!
//! The blast radius of a dmtcpd shard failure must be exactly its own
//! sessions: co-tenant generations on other shards keep committing through
//! the outage, and the victim session falls back to its previous completed
//! generation on restart. One cell per barrier stage, matrix-style — the
//! coordinator dies the moment the victim generation reaches the cell's
//! stage, so every phase of the protocol gets a kill.

use dmtcp::coord::{coord_shared_for, stage, Coordinator};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};
use std::collections::BTreeMap;
use svc::{DaemonConfig, Dmtcpd};

struct Worker {
    pc: u8,
    id: u64,
    count: u64,
    target: u64,
}
simkit::impl_snap!(struct Worker { pc, id, count, target });

impl Program for Worker {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            k.mmap_synthetic(
                "ballast",
                256 << 10,
                0xace ^ self.id,
                oskit::mem::FillProfile::Random,
            );
            self.pc = 1;
        }
        if self.count < self.target {
            self.count += 1;
            return Step::Compute(50_000);
        }
        let fd = k
            .open(&format!("/shared/result_{}", self.id), true)
            .expect("result file");
        k.write(fd, self.count.to_string().as_bytes())
            .expect("write");
        Step::Exit(0)
    }
    fn tag(&self) -> &'static str {
        "svc-worker"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<Worker>("svc-worker");
    r
}

const EV: u64 = 8_000_000;

/// Run until the victim shard's in-flight generation `gen` has released
/// `stg` (0 = the instant the generation starts).
fn run_to_stage(w: &mut World, sim: &mut OsSim, port: u16, gen: u64, stg: u8) {
    let mut budget = EV;
    loop {
        let there = {
            let cs = coord_shared_for(w, port);
            cs.gen_stats
                .iter()
                .rev()
                .find(|g| g.gen == gen)
                .map(|g| stg == 0 || g.releases.contains_key(&stg))
                .unwrap_or(false)
        };
        if there {
            return;
        }
        assert!(
            sim.step(w),
            "queue drained before gen {gen} reached stage {stg}"
        );
        budget -= 1;
        assert!(budget > 0, "gen {gen} never reached stage {stg}");
    }
}

/// One cell: kill tenant A's shard coordinator when A's generation 2
/// releases `stg`; B must commit two more generations during the outage,
/// and A must restart from generation 1.
fn coord_kill_cell(stg: u8) {
    let (mut w, mut sim) = (
        World::new(HwSpec::cluster(), 3, registry()),
        Sim::new() as OsSim,
    );
    let d = Dmtcpd::start(
        &mut w,
        &mut sim,
        DaemonConfig {
            shards: 2,
            ..DaemonConfig::default()
        },
    );
    let a = d.open(&mut w, &mut sim, "acme", 4).expect("admitted");
    let b = d.open(&mut w, &mut sim, "bolt", 4).expect("admitted");
    a.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "worker",
        Box::new(Worker {
            pc: 0,
            id: 1,
            count: 0,
            target: 3000,
        }),
    );
    b.launch(
        &mut w,
        &mut sim,
        NodeId(2),
        "worker",
        Box::new(Worker {
            pc: 0,
            id: 2,
            count: 0,
            target: 3000,
        }),
    );
    dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_millis(20));

    // Both tenants complete a generation cleanly.
    let ga1 = a.checkpoint_and_wait(&mut w, &mut sim, EV).expect("a gen1");
    b.checkpoint_and_wait(&mut w, &mut sim, EV).expect("b gen1");

    // Victim generation 2 in flight; the shard coordinator dies at `stg`.
    a.request_checkpoint(&mut w, &mut sim);
    run_to_stage(&mut w, &mut sim, a.shard_port(), 2, stg);
    let victim_coord = a.as_session(&mut w).coord_pid;
    w.signal(&mut sim, victim_coord, oskit::proc::sig::SIGKILL);
    sim.run_until(&mut w, sim.now() + Nanos::from_millis(1));

    // Co-tenant generations commit untouched through the outage.
    let gb2 = b.checkpoint_and_wait(&mut w, &mut sim, EV).expect("b gen2");
    let gb3 = b.checkpoint_and_wait(&mut w, &mut sim, EV).expect("b gen3");
    assert_eq!((gb2.gen, gb3.gen), (2, 3), "bystander shard unaffected");

    // The victim's computation is wedged behind a dead coordinator: kill
    // it, bring up a replacement shard coordinator on the same port, and
    // fall back. The incomplete generation 2 never reached a restart
    // script, so resilient restart lands on generation 1.
    a.kill_computation(&mut w, &mut sim);
    let new_coord: Pid = w.spawn(
        &mut sim,
        d.cfg.node,
        "dmtcp_coordinator",
        Box::new(Coordinator::new(a.shard_port(), None)),
        Pid(1),
        BTreeMap::new(),
    );
    assert!(new_coord.0 > 0);
    sim.run_until(&mut w, sim.now() + Nanos::from_millis(1));
    let out = a
        .restart_resilient(&mut w, &mut sim, &|_| NodeId(1))
        .expect("previous generation restartable");
    assert_eq!(
        out.gen, ga1.gen,
        "victim falls back to its previous generation"
    );
    dmtcp::Session::wait_restart_done_on(&mut w, &mut sim, a.shard_port(), out.gen, EV);

    // Both computations finish with correct answers.
    dmtcp::session::run_for(&mut w, &mut sim, Nanos::from_millis(700));
    let read = |w: &World, id: u64| {
        w.shared_fs
            .read_all(&format!("/shared/result_{id}"))
            .ok()
            .map(|b| String::from_utf8(b).unwrap())
    };
    assert_eq!(
        read(&w, 1).as_deref(),
        Some("3000"),
        "victim finishes after fallback"
    );
    assert_eq!(read(&w, 2).as_deref(), Some("3000"), "bystander finishes");
}

#[test]
fn shard_coord_killed_at_request() {
    coord_kill_cell(0);
}

#[test]
fn shard_coord_killed_at_suspend() {
    coord_kill_cell(stage::SUSPENDED);
}

#[test]
fn shard_coord_killed_at_drain() {
    coord_kill_cell(stage::DRAINED);
}

#[test]
fn shard_coord_killed_at_checkpoint() {
    coord_kill_cell(stage::CHECKPOINTED);
}
