//! ParGeant4: the TOP-C parallelization of Geant4 used throughout §5.2 and
//! Figure 5 as the scalability workload.
//!
//! Rank 0 is the TOP-C master distributing Monte-Carlo "event" tasks;
//! workers track particles (deterministic pseudo-physics on a per-task
//! seed) and return energy tallies. Each process carries the calibrated
//! ParGeant4 footprint: a Geant4-sized code/geometry image that compresses
//! ~5× (the figures show ParGeant4 images shrinking well under gzip).

use crate::result_path;
use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::Kernel;
use simkit::rng::DetRng;
use simkit::{Nanos, Snap};
use simmpi::launch::RankFactory;
use simmpi::rt::MpiRt;
use simmpi::topc::{TopcMaster, TopcWorker, WorkerPoll};
use std::rc::Rc;

/// Per-process resident footprint (MiB) — Geant4 with its physics tables.
pub const GEANT_FOOTPRINT_MB: u64 = 28;

/// One ParGeant4 rank (master if rank 0).
pub struct GeantRank {
    /// MPI runtime.
    pub rt: MpiRt,
    /// Program counter.
    pub pc: u8,
    /// Master state (rank 0).
    pub master: TopcMaster,
    /// Worker state.
    pub worker: TopcWorker,
    /// Work units per task (tracking cost).
    pub work_per_task: u64,
    /// Current task being computed.
    pub current: u64,
}
simkit::impl_snap!(struct GeantRank { rt, pc, master, worker, work_per_task, current });

/// Deterministic "particle tracking": a seed-driven xorshift cascade whose
/// sum stands in for the deposited-energy tally.
pub fn track_events(seed: u64, events: u32) -> u64 {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut tally = 0u64;
    for _ in 0..events {
        // Secondary production depth depends on the "energy".
        let depth = 4 + (rng.below(8) as usize);
        let mut e = rng.next_u64();
        for _ in 0..depth {
            e ^= e << 13;
            e ^= e >> 7;
            e ^= e << 17;
            tally = tally.wrapping_add(e & 0xFFFF);
        }
    }
    tally
}

impl Program for GeantRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    k.map_library("libG4physics.so", (GEANT_FOOTPRINT_MB / 2) << 20, 0x6ea47);
                    k.mmap_synthetic(
                        "geometry+tables",
                        (GEANT_FOOTPRINT_MB / 2) << 20,
                        0x6ea47 ^ self.rt.rank as u64,
                        FillProfile::Mixed {
                            zero_pct: 20,
                            text_pct: 40,
                            code_pct: 30,
                        },
                    );
                    self.pc = if self.rt.rank == 0 { 1 } else { 10 };
                }
                // master
                1 => {
                    let done = self.master.poll(&mut self.rt, k, |t| {
                        (t as u64).wrapping_mul(0x9E3779B9).to_le_bytes().to_vec()
                    });
                    if !done {
                        return Step::Block;
                    }
                    let mut rs = self.master.results.clone();
                    rs.sort_by_key(|(t, _, _)| *t);
                    let mut tally = 0u64;
                    for (_, _, payload) in rs {
                        tally = tally
                            .wrapping_add(u64::from_le_bytes(payload[..8].try_into().expect("8")));
                    }
                    let fd = k.open(&result_path("pargeant4"), true).expect("result");
                    k.write(fd, format!("{tally}").as_bytes()).expect("w");
                    return Step::Exit(0);
                }
                // worker
                10 => match self.worker.poll(&mut self.rt, k) {
                    WorkerPoll::Idle => return Step::Block,
                    WorkerPoll::Done => {
                        if !self.rt.drain_out(k) {
                            return Step::Block;
                        }
                        return Step::Exit(0);
                    }
                    WorkerPoll::Task(_t, payload) => {
                        self.current = u64::from_le_bytes(payload[..8].try_into().expect("8"));
                        self.pc = 11;
                        return Step::Compute(self.work_per_task);
                    }
                },
                11 => {
                    let tally = track_events(self.current, 200);
                    self.worker.submit(&mut self.rt, &tally.to_le_bytes());
                    self.pc = 10;
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "pargeant4-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Factory: `tasks` Monte-Carlo tasks of `work_per_task` work units each.
pub fn geant_factory(tasks: u32, work_per_task: u64) -> RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(GeantRank {
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            master: TopcMaster::new(tasks, size),
            worker: TopcWorker::default(),
            work_per_task,
            current: 0,
        }) as Box<dyn Program>
    })
}

/// Register loaders.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<GeantRank>("pargeant4-rank");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tracking_is_deterministic_and_seed_sensitive() {
        let a = super::track_events(1, 100);
        assert_eq!(a, super::track_events(1, 100));
        assert_ne!(a, super::track_events(2, 100));
        assert_ne!(a, super::track_events(1, 101));
    }
}
