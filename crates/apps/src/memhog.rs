//! Figure 6's synthetic workload: "A synthetic OpenMPI program allocating
//! random data on 32 nodes", swept from 0 to ~70 GB of aggregate memory
//! with compression disabled.

use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::Kernel;
use simkit::{Nanos, Snap};
use simmpi::coll::CollOp;
use simmpi::launch::RankFactory;
use simmpi::rt::MpiRt;
use std::rc::Rc;

/// One memory-hog rank: joins the job, allocates `mb` MiB of random data,
/// then idles so the checkpoint can be taken at a known footprint.
pub struct MemHogRank {
    /// Runtime.
    pub rt: MpiRt,
    /// Program counter.
    pub pc: u8,
    /// MiB of random data to allocate.
    pub mb: u64,
    /// Collective scratch.
    pub coll: CollOp,
}
simkit::impl_snap!(struct MemHogRank { rt, pc, mb, coll });

impl Program for MemHogRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    if self.mb > 0 {
                        k.mmap_synthetic(
                            "random-data",
                            self.mb << 20,
                            0xfeed ^ self.rt.rank as u64,
                            FillProfile::Random,
                        );
                    }
                    self.coll = CollOp::begin(&mut self.rt);
                    self.pc = 1;
                }
                1 => {
                    // Barrier so every rank has its memory before anyone
                    // reports ready.
                    if !self.coll.barrier(&mut self.rt, k) {
                        return Step::Block;
                    }
                    self.pc = 2;
                }
                2 => {
                    // Idle: the harness checkpoints us here.
                    return Step::Sleep(Nanos::from_millis(20));
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "memhog-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Factory allocating `mb_per_rank` MiB per rank.
pub fn memhog_factory(mb_per_rank: u64) -> RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(MemHogRank {
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            mb: mb_per_rank,
            coll: CollOp::default(),
        }) as Box<dyn Program>
    })
}

/// Register loaders.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<MemHogRank>("memhog-rank");
}
