//! Figure 6's synthetic workload: "A synthetic OpenMPI program allocating
//! random data on 32 nodes", swept from 0 to ~70 GB of aggregate memory
//! with compression disabled.

use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::Kernel;
use simkit::{Nanos, Snap};
use simmpi::coll::CollOp;
use simmpi::launch::RankFactory;
use simmpi::rt::MpiRt;
use std::rc::Rc;

/// One memory-hog rank: joins the job, allocates `mb` MiB of random data,
/// then idles so the checkpoint can be taken at a known footprint.
pub struct MemHogRank {
    /// Runtime.
    pub rt: MpiRt,
    /// Program counter.
    pub pc: u8,
    /// MiB of random data to allocate.
    pub mb: u64,
    /// Collective scratch.
    pub coll: CollOp,
}
simkit::impl_snap!(struct MemHogRank { rt, pc, mb, coll });

impl Program for MemHogRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    if self.mb > 0 {
                        k.mmap_synthetic(
                            "random-data",
                            self.mb << 20,
                            0xfeed ^ self.rt.rank as u64,
                            FillProfile::Random,
                        );
                    }
                    self.coll = CollOp::begin(&mut self.rt);
                    self.pc = 1;
                }
                1 => {
                    // Barrier so every rank has its memory before anyone
                    // reports ready.
                    if !self.coll.barrier(&mut self.rt, k) {
                        return Step::Block;
                    }
                    self.pc = 2;
                }
                2 => {
                    // Idle: the harness checkpoints us here.
                    return Step::Sleep(Nanos::from_millis(20));
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "memhog-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Scratch buffer the hog rewrites on every wake.
const SCRATCH_LEN: usize = 64 << 10;

/// A mostly-idle desktop process for the incremental-checkpoint bench: it
/// materializes `mb` MiB of real (non-synthetic) ballast once at startup,
/// then rewrites a single 64 KiB scratch buffer on every wake. From
/// generation 2 on the dirty set is just the scratch region, so the
/// incremental writer aliases the ballast into the previous generation's
/// chunks while a full capture re-reads and re-compresses every byte.
pub struct IdleHog {
    /// Program counter.
    pub pc: u8,
    /// MiB of real ballast, written once at startup.
    pub mb: u64,
    /// Scratch region id (valid once `pc > 0`).
    pub scratch: u64,
    /// Wake counter, stamped into the scratch buffer so its content (and
    /// thus its chunk identity) changes every generation.
    pub tick: u64,
}
simkit::impl_snap!(struct IdleHog { pc, mb, scratch, tick });

impl IdleHog {
    /// A hog with `mb` MiB of ballast.
    pub fn new(mb: u64) -> Self {
        IdleHog {
            pc: 0,
            mb,
            scratch: 0,
            tick: 0,
        }
    }
}

impl Program for IdleHog {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            // One region per 4 MiB gives the page-granular dirty bitmap
            // region granularity to work with. The content is mildly
            // varied (distinct per region and per block) so chunks don't
            // collapse into one dedup hit, but stays compressible.
            let mut left = self.mb;
            let mut i = 0u64;
            let mut x = 0x9e37_79b9_7f4a_7c15u64;
            while left > 0 {
                let mb = left.min(4);
                let id = k.mmap_anon(&format!("ballast{i}"), (mb << 20) as usize);
                let mut buf = vec![0u8; (mb << 20) as usize];
                for (j, b) in buf.iter_mut().enumerate() {
                    if j % 512 == 0 {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407 ^ i);
                    }
                    *b = (x >> 56) as u8;
                }
                k.mem_write(id, 0, &buf);
                left -= mb;
                i += 1;
            }
            self.scratch = k.mmap_anon("scratch", SCRATCH_LEN) as u64;
            self.pc = 1;
        }
        self.tick += 1;
        let stamp = self.tick.to_le_bytes();
        let mut buf = vec![0u8; SCRATCH_LEN];
        for (j, b) in buf.iter_mut().enumerate() {
            *b = stamp[j % 8] ^ j as u8;
        }
        k.mem_write(self.scratch as usize, 0, &buf);
        Step::Sleep(Nanos::from_millis(10))
    }
    fn tag(&self) -> &'static str {
        "idlehog"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Factory allocating `mb_per_rank` MiB per rank.
pub fn memhog_factory(mb_per_rank: u64) -> RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(MemHogRank {
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            mb: mb_per_rank,
            coll: CollOp::default(),
        }) as Box<dyn Program>
    })
}

/// Register loaders.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<MemHogRank>("memhog-rank");
    reg.register_snap::<IdleHog>("idlehog");
}
