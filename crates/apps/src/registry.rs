//! One-stop program registry for every workload in this crate (plus the
//! MPI management processes), so restart can reconstruct anything the
//! benchmarks checkpoint.

use oskit::program::Registry;

/// Register every application loader.
pub fn register_all(reg: &mut Registry) {
    crate::desktop::register(reg);
    crate::nas::register(reg);
    crate::geant::register(reg);
    crate::ipython::register(reg);
    crate::memhog::register(reg);
    crate::runcms::register(reg);
    simmpi::launch::register_management(reg);
}

/// A registry with everything registered.
pub fn full_registry() -> Registry {
    let mut reg = Registry::new();
    register_all(&mut reg);
    reg
}
