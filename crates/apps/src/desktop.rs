//! The 21 desktop applications of Figure 3.
//!
//! Each is an interactive-loop process whose memory footprint and
//! compressibility mix are calibrated so that the *simulated* gzip'd image
//! sizes and checkpoint times land where the figure puts them (raw size ≈
//! paper checkpoint time × the desktop gzip rate). The multi-process
//! entries are structural, not just profiles: TightVNC+TWM is a vncserver
//! holding a pty master with TWM and an xterm client on the slave plus a
//! local socket; vim/cscope is a vim driving cscope through a pipe pair —
//! so checkpointing them exercises ptys, sockets, and pipes exactly as
//! §5.1 describes.

use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{Errno, Fd, Kernel};
use simkit::{Nanos, Snap};

/// Catalogue entry for one Figure-3 application.
#[derive(Debug, Clone, Copy)]
pub struct DesktopSpec {
    /// Display name (as on the figure's x axis).
    pub name: &'static str,
    /// Resident set in MiB (drives checkpoint time).
    pub raw_mb: u64,
    /// Page mix: percent zero pages.
    pub zero_pct: u8,
    /// Percent text-like pages.
    pub text_pct: u8,
    /// Percent code-like pages (dynamic libraries).
    pub code_pct: u8,
    /// Structural shape.
    pub shape: Shape,
}

/// Process structure of an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// One interactive process.
    Single,
    /// vncserver + twm + xterm: three processes, a pty and a local socket.
    Vnc,
    /// vim + cscope joined by two pipes.
    VimCscope,
}

/// The Figure-3 catalogue. Footprints chosen so simulated gzip time ≈ the
/// figure's checkpoint bar (desktop gzip ≈ 27 MB/s), with compressibility
/// mixes typical of each runtime (interpreters are text/code-heavy; MATLAB
/// and Octave carry numeric arrays).
pub const CATALOGUE: &[DesktopSpec] = &[
    DesktopSpec {
        name: "bc",
        raw_mb: 2,
        zero_pct: 10,
        text_pct: 40,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "emacs",
        raw_mb: 32,
        zero_pct: 10,
        text_pct: 45,
        code_pct: 35,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "ghci",
        raw_mb: 43,
        zero_pct: 15,
        text_pct: 35,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "ghostscript",
        raw_mb: 11,
        zero_pct: 10,
        text_pct: 30,
        code_pct: 45,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "gnuplot",
        raw_mb: 8,
        zero_pct: 10,
        text_pct: 30,
        code_pct: 45,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "gst",
        raw_mb: 13,
        zero_pct: 10,
        text_pct: 40,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "lynx",
        raw_mb: 11,
        zero_pct: 10,
        text_pct: 50,
        code_pct: 30,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "macaulay2",
        raw_mb: 27,
        zero_pct: 10,
        text_pct: 35,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "matlab",
        raw_mb: 89,
        zero_pct: 10,
        text_pct: 25,
        code_pct: 35,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "mzscheme",
        raw_mb: 16,
        zero_pct: 10,
        text_pct: 40,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "ocaml",
        raw_mb: 7,
        zero_pct: 10,
        text_pct: 40,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "octave",
        raw_mb: 24,
        zero_pct: 10,
        text_pct: 30,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "perl",
        raw_mb: 19,
        zero_pct: 10,
        text_pct: 45,
        code_pct: 35,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "php",
        raw_mb: 16,
        zero_pct: 10,
        text_pct: 45,
        code_pct: 35,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "python",
        raw_mb: 21,
        zero_pct: 10,
        text_pct: 45,
        code_pct: 35,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "ruby",
        raw_mb: 19,
        zero_pct: 10,
        text_pct: 45,
        code_pct: 35,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "slsh",
        raw_mb: 8,
        zero_pct: 10,
        text_pct: 40,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "sqlite",
        raw_mb: 8,
        zero_pct: 10,
        text_pct: 35,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "tclsh",
        raw_mb: 4,
        zero_pct: 10,
        text_pct: 40,
        code_pct: 40,
        shape: Shape::Single,
    },
    DesktopSpec {
        name: "tightvnc+twm",
        raw_mb: 38,
        zero_pct: 15,
        text_pct: 30,
        code_pct: 40,
        shape: Shape::Vnc,
    },
    DesktopSpec {
        name: "vim/cscope",
        raw_mb: 13,
        zero_pct: 10,
        text_pct: 45,
        code_pct: 35,
        shape: Shape::VimCscope,
    },
];

/// Find a catalogue entry by name.
pub fn spec_by_name(name: &str) -> Option<&'static DesktopSpec> {
    CATALOGUE.iter().find(|s| s.name == name)
}

/// The fill profile a catalogue entry implies.
pub fn profile_of(s: &DesktopSpec) -> FillProfile {
    FillProfile::Mixed {
        zero_pct: s.zero_pct,
        text_pct: s.text_pct,
        code_pct: s.code_pct,
    }
}

/// A single-process interactive application: maps its footprint, then
/// loops forever doing light work on a small live heap, like an
/// interpreter sitting at a prompt.
pub struct Interactive {
    /// Seed for the footprint fill.
    pub seed: u64,
    /// Footprint in MiB.
    pub raw_mb: u64,
    /// Mix percentages (zero, text, code).
    pub mix: (u8, u8, u8),
    /// Program counter.
    pub pc: u8,
    /// Live heap region.
    pub heap: u64,
    /// Iterations completed.
    pub ticks: u64,
}
simkit::impl_snap!(struct Interactive { seed, raw_mb, mix, pc, heap, ticks });

impl Interactive {
    /// Build from a catalogue entry.
    pub fn from_spec(s: &DesktopSpec, seed: u64) -> Self {
        Interactive {
            seed,
            raw_mb: s.raw_mb,
            mix: (s.zero_pct, s.text_pct, s.code_pct),
            pc: 0,
            heap: 0,
            ticks: 0,
        }
    }
}

impl Program for Interactive {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                // A small live heap plus the calibrated footprint (split
                // into a "libraries" part and a data part for realism in
                // /proc maps).
                self.heap = k.mmap_anon("heap", 64 * 1024) as u64;
                let lib_mb = (self.raw_mb / 3).max(1);
                let data_mb = self.raw_mb - lib_mb;
                k.map_library("libs.so", lib_mb << 20, self.seed ^ 0x11b);
                if data_mb > 0 {
                    k.mmap_synthetic(
                        "data",
                        data_mb << 20,
                        self.seed,
                        FillProfile::Mixed {
                            zero_pct: self.mix.0,
                            text_pct: self.mix.1,
                            code_pct: self.mix.2,
                        },
                    );
                }
                self.pc = 1;
                Step::Yield
            }
            1 => {
                // Interactive idle loop: touch the live heap occasionally.
                self.ticks += 1;
                k.mem_write(
                    self.heap as usize,
                    (self.ticks % 1024) * 8,
                    &self.ticks.to_le_bytes(),
                );
                Step::Sleep(Nanos::from_millis(10))
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "desktop-interactive"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// vncserver: owns the display pty and a listening socket that TWM and the
/// xterm connect to; forwards "framebuffer updates" to whoever asks.
pub struct VncServer {
    /// Footprint spec.
    pub raw_mb: u64,
    /// Fill seed.
    pub seed: u64,
    /// Program counter.
    pub pc: u8,
    /// Pty master (the "display").
    pub master: Fd,
    /// Listening socket for X clients.
    pub lfd: Fd,
    /// Connected clients.
    pub clients: Vec<Fd>,
    /// Updates served.
    pub updates: u64,
}
simkit::impl_snap!(struct VncServer { raw_mb, seed, pc, master, lfd, clients, updates });

impl Program for VncServer {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    k.mmap_synthetic(
                        "framebuffer",
                        (self.raw_mb / 2) << 20,
                        self.seed,
                        FillProfile::Mixed {
                            zero_pct: 25,
                            text_pct: 10,
                            code_pct: 30,
                        },
                    );
                    k.map_library("libvnc.so", (self.raw_mb / 4) << 20, self.seed ^ 7);
                    let (m, s) = k.openpty();
                    self.master = m;
                    k.close(s).expect("server keeps only the master");
                    let (lfd, _) = k.listen_on(6000).expect("X display port");
                    self.lfd = lfd;
                    self.pc = 1;
                }
                1 => {
                    // Accept window-manager / xterm connections.
                    loop {
                        match k.accept(self.lfd) {
                            Ok(fd) => self.clients.push(fd),
                            Err(Errno::WouldBlock) => break,
                            Err(e) => panic!("vnc accept: {e:?}"),
                        }
                    }
                    // Serve one request per client per pass.
                    let mut progressed = false;
                    for i in 0..self.clients.len() {
                        match k.read(self.clients[i], 64) {
                            Ok(b) if b.is_empty() => {}
                            Ok(_req) => {
                                self.updates += 1;
                                let reply = self.updates.to_le_bytes();
                                let _ = k.write(self.clients[i], &reply);
                                progressed = true;
                            }
                            Err(Errno::WouldBlock) => {}
                            Err(e) => panic!("vnc read: {e:?}"),
                        }
                    }
                    if !progressed {
                        return Step::Block;
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "vncserver"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// An X client (TWM or xterm): connects to the vnc display socket and
/// requests updates in a loop.
pub struct XClient {
    /// Footprint MiB.
    pub raw_mb: u64,
    /// Fill seed.
    pub seed: u64,
    /// Program counter.
    pub pc: u8,
    /// Socket to the server.
    pub fd: Fd,
    /// Requests issued.
    pub reqs: u64,
}
simkit::impl_snap!(struct XClient { raw_mb, seed, pc, fd, reqs });

impl Program for XClient {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    k.mmap_synthetic(
                        "client-data",
                        self.raw_mb << 20,
                        self.seed,
                        FillProfile::Mixed {
                            zero_pct: 15,
                            text_pct: 30,
                            code_pct: 40,
                        },
                    );
                    self.pc = 1;
                }
                1 => match k.connect("node00", 6000) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                    Err(e) => panic!("xclient connect: {e:?}"),
                },
                2 => {
                    let _ = k.write(self.fd, b"req");
                    self.pc = 3;
                }
                3 => match k.read(self.fd, 16) {
                    Ok(b) if b.is_empty() => return Step::Exit(0),
                    Ok(_) => {
                        self.reqs += 1;
                        self.pc = 2;
                        return Step::Sleep(Nanos::from_millis(15));
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("xclient read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "xclient"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// vim driving cscope through a pipe pair (query out, results back).
pub struct VimCscope {
    /// Footprint MiB of the pair (vim gets 2/3).
    pub raw_mb: u64,
    /// Fill seed.
    pub seed: u64,
    /// Program counter.
    pub pc: u8,
    /// Query pipe write end (vim side) / read end (cscope side).
    pub qfd: Fd,
    /// Result pipe read end (vim side) / write end (cscope side).
    pub rfd: Fd,
    /// Queries completed.
    pub queries: u64,
}
simkit::impl_snap!(struct VimCscope { raw_mb, seed, pc, qfd, rfd, queries });

impl Program for VimCscope {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    let (q_r, q_w) = k.pipe();
                    let (r_r, r_w) = k.pipe();
                    // Fork: child becomes cscope with (q_r, r_w).
                    self.qfd = q_r;
                    self.rfd = r_w;
                    self.pc = 1;
                    k.fork_snapshot(self).expect("fork cscope");
                    // Parent keeps (q_w, r_r).
                    self.qfd = q_w;
                    self.rfd = r_r;
                }
                1 => match k.fork_ret() {
                    Some(0) => {
                        k.clear_fork_ret();
                        k.mmap_synthetic(
                            "cscope-index",
                            (self.raw_mb / 3) << 20,
                            self.seed ^ 0xc5,
                            FillProfile::Mixed {
                                zero_pct: 5,
                                text_pct: 60,
                                code_pct: 25,
                            },
                        );
                        self.pc = 10;
                    }
                    _ => {
                        k.clear_fork_ret();
                        k.mmap_synthetic(
                            "vim-buffers",
                            (self.raw_mb * 2 / 3) << 20,
                            self.seed,
                            FillProfile::Mixed {
                                zero_pct: 10,
                                text_pct: 55,
                                code_pct: 25,
                            },
                        );
                        self.pc = 20;
                    }
                },
                // cscope: answer queries
                10 => match k.read(self.qfd, 64) {
                    Ok(b) if b.is_empty() => return Step::Exit(0),
                    Ok(q) => {
                        let mut reply = b"hit:".to_vec();
                        reply.extend_from_slice(&q);
                        k.write(self.rfd, &reply).expect("cscope reply");
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("cscope read: {e:?}"),
                },
                // vim: issue queries forever (interactive session)
                20 => {
                    let q = format!("sym{}", self.queries);
                    k.write(self.qfd, q.as_bytes()).expect("query");
                    self.pc = 21;
                }
                21 => match k.read(self.rfd, 128) {
                    Ok(b) if b.is_empty() => panic!("cscope died"),
                    Ok(_) => {
                        self.queries += 1;
                        self.pc = 20;
                        return Step::Sleep(Nanos::from_millis(20));
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("vim read: {e:?}"),
                },
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "vim-cscope"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Launch a catalogue entry (1–3 processes) on `node`, optionally under
/// DMTCP. Returns the pids created directly (children via fork are traced
/// automatically).
pub fn launch_desktop(
    w: &mut World,
    sim: &mut OsSim,
    session: Option<&dmtcp::Session>,
    node: NodeId,
    spec: &DesktopSpec,
    seed: u64,
) -> Vec<Pid> {
    let spawn = |w: &mut World, sim: &mut OsSim, cmd: &str, prog: Box<dyn Program>| -> Pid {
        match session {
            Some(s) => s.launch(w, sim, node, cmd, prog),
            None => w.spawn(sim, node, cmd, prog, Pid(1), Default::default()),
        }
    };
    match spec.shape {
        Shape::Single => {
            vec![spawn(
                w,
                sim,
                spec.name,
                Box::new(Interactive::from_spec(spec, seed)),
            )]
        }
        Shape::Vnc => {
            let server = spawn(
                w,
                sim,
                "vncserver",
                Box::new(VncServer {
                    raw_mb: spec.raw_mb * 2 / 3,
                    seed,
                    pc: 0,
                    master: -1,
                    lfd: -1,
                    clients: Vec::new(),
                    updates: 0,
                }),
            );
            let twm = spawn(
                w,
                sim,
                "twm",
                Box::new(XClient {
                    raw_mb: spec.raw_mb / 6,
                    seed: seed ^ 1,
                    pc: 0,
                    fd: -1,
                    reqs: 0,
                }),
            );
            let xterm = spawn(
                w,
                sim,
                "xterm",
                Box::new(XClient {
                    raw_mb: spec.raw_mb / 6,
                    seed: seed ^ 2,
                    pc: 0,
                    fd: -1,
                    reqs: 0,
                }),
            );
            vec![server, twm, xterm]
        }
        Shape::VimCscope => {
            vec![spawn(
                w,
                sim,
                "vim",
                Box::new(VimCscope {
                    raw_mb: spec.raw_mb,
                    seed,
                    pc: 0,
                    qfd: -1,
                    rfd: -1,
                    queries: 0,
                }),
            )]
        }
    }
}

/// Register the desktop program loaders.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<Interactive>("desktop-interactive");
    reg.register_snap::<VncServer>("vncserver");
    reg.register_snap::<XClient>("xclient");
    reg.register_snap::<VimCscope>("vim-cscope");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_the_figure_roster() {
        assert_eq!(CATALOGUE.len(), 21, "Figure 3 shows 21 applications");
        assert!(spec_by_name("matlab").is_some());
        assert!(spec_by_name("tightvnc+twm").map(|s| s.shape) == Some(Shape::Vnc));
        assert!(spec_by_name("vim/cscope").map(|s| s.shape) == Some(Shape::VimCscope));
        // Mixes are valid percentages.
        for s in CATALOGUE {
            assert!(
                s.zero_pct as u16 + s.text_pct as u16 + s.code_pct as u16 <= 100,
                "{}",
                s.name
            );
            assert!(s.raw_mb >= 1);
        }
    }

    #[test]
    fn matlab_is_the_biggest_single_process_entry() {
        // Figure 3: MATLAB has the tallest checkpoint bar.
        let m = spec_by_name("matlab").expect("matlab");
        for s in CATALOGUE {
            if s.shape == Shape::Single {
                assert!(s.raw_mb <= m.raw_mb, "{} exceeds matlab", s.name);
            }
        }
    }
}
