//! iPython (§5.2, "based on sockets directly"): an enhanced Python shell
//! with parallel computing support. Two configurations from Figure 4:
//!
//! * **iPython/Shell** — the interactive interpreter, idle at checkpoint
//!   time: a single process with an interpreter-sized footprint.
//! * **iPython/Demo** — the tutorial's "parallel computing" demo: a
//!   controller process plus one engine per node, connected with plain TCP
//!   sockets (no MPI), running a parallel map.

use crate::result_path;
use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{Errno, Fd, Kernel};
use simkit::{Nanos, Snap};

/// Controller port.
pub const IPY_PORT: u16 = 10_105;

/// The idle interactive shell (iPython/Shell).
pub struct IPyShell {
    /// Program counter.
    pub pc: u8,
    /// Interpreter footprint in MiB.
    pub raw_mb: u64,
    /// Prompt ticks.
    pub ticks: u64,
}
simkit::impl_snap!(struct IPyShell { pc, raw_mb, ticks });

impl Program for IPyShell {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                k.map_library("libpython2.5.so", (self.raw_mb / 3) << 20, 0x1b51);
                k.mmap_synthetic(
                    "interpreter-heap",
                    (self.raw_mb * 2 / 3) << 20,
                    0x1b52,
                    FillProfile::Mixed {
                        zero_pct: 15,
                        text_pct: 45,
                        code_pct: 30,
                    },
                );
                self.pc = 1;
                Step::Yield
            }
            1 => {
                self.ticks += 1;
                Step::Sleep(Nanos::from_millis(50)) // idle at the prompt
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "ipython-shell"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// The parallel-demo controller: accepts engines, scatters map tasks,
/// gathers results, loops for `rounds`.
pub struct IPyController {
    /// Program counter.
    pub pc: u8,
    /// Listener fd.
    pub lfd: Fd,
    /// Engine sockets.
    pub engines: Vec<Fd>,
    /// Expected engine count.
    pub n_engines: u32,
    /// Rounds completed.
    pub round: u32,
    /// Rounds requested.
    pub rounds: u32,
    /// Partial results this round.
    pub got: Vec<Option<u64>>,
    /// Accumulated checksum across rounds.
    pub acc: u64,
    /// Partial read buffers per engine.
    pub bufs: Vec<Vec<u8>>,
}
simkit::impl_snap!(struct IPyController { pc, lfd, engines, n_engines, round, rounds, got, acc, bufs });

impl Program for IPyController {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    k.mmap_synthetic(
                        "controller-heap",
                        24 << 20,
                        0x1b60,
                        FillProfile::Mixed {
                            zero_pct: 15,
                            text_pct: 45,
                            code_pct: 30,
                        },
                    );
                    let (fd, _) = k.listen_on(IPY_PORT).expect("controller port");
                    self.lfd = fd;
                    self.pc = 1;
                }
                1 => {
                    while (self.engines.len() as u32) < self.n_engines {
                        match k.accept(self.lfd) {
                            Ok(fd) => {
                                self.engines.push(fd);
                                self.bufs.push(Vec::new());
                            }
                            Err(Errno::WouldBlock) => return Step::Block,
                            Err(e) => panic!("controller accept: {e:?}"),
                        }
                    }
                    self.pc = 2;
                }
                2 => {
                    if self.round == self.rounds {
                        for &fd in &self.engines {
                            let _ = k.write(fd, &u64::MAX.to_le_bytes());
                        }
                        let fd = k.open(&result_path("ipython-demo"), true).expect("result");
                        k.write(fd, format!("{}", self.acc).as_bytes()).expect("w");
                        return Step::Exit(0);
                    }
                    // Scatter: task = round-salted seed per engine.
                    for (i, &fd) in self.engines.iter().enumerate() {
                        let task = (self.round as u64) << 32 | i as u64;
                        k.write(fd, &task.to_le_bytes()).expect("scatter");
                    }
                    self.got = vec![None; self.engines.len()];
                    self.pc = 3;
                }
                3 => {
                    // Gather one u64 result per engine.
                    let mut progressed = false;
                    for i in 0..self.engines.len() {
                        if self.got[i].is_some() {
                            continue;
                        }
                        match k.read(self.engines[i], 8 - self.bufs[i].len()) {
                            Ok(b) if b.is_empty() => panic!("engine died"),
                            Ok(b) => {
                                self.bufs[i].extend_from_slice(&b);
                                if self.bufs[i].len() == 8 {
                                    self.got[i] = Some(u64::from_le_bytes(
                                        self.bufs[i][..].try_into().expect("8"),
                                    ));
                                    self.bufs[i].clear();
                                }
                                progressed = true;
                            }
                            Err(Errno::WouldBlock) => {}
                            Err(e) => panic!("gather: {e:?}"),
                        }
                    }
                    if self.got.iter().all(|g| g.is_some()) {
                        for g in &self.got {
                            self.acc = self.acc.wrapping_mul(31).wrapping_add(g.expect("all"));
                        }
                        self.round += 1;
                        self.pc = 2;
                    } else if !progressed {
                        return Step::Block;
                    }
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "ipython-controller"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// A parallel engine: connects to the controller, maps tasks forever.
pub struct IPyEngine {
    /// Program counter.
    pub pc: u8,
    /// Controller hostname.
    pub controller: String,
    /// Socket to the controller.
    pub fd: Fd,
    /// Partial task buffer.
    pub buf: Vec<u8>,
    /// Tasks completed.
    pub done: u64,
}
simkit::impl_snap!(struct IPyEngine { pc, controller, fd, buf, done });

impl Program for IPyEngine {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    k.mmap_synthetic(
                        "engine-heap",
                        30 << 20,
                        0x1b70,
                        FillProfile::Mixed {
                            zero_pct: 15,
                            text_pct: 40,
                            code_pct: 30,
                        },
                    );
                    self.pc = 1;
                }
                1 => match k.connect(&self.controller, IPY_PORT) {
                    Ok(fd) => {
                        self.fd = fd;
                        self.pc = 2;
                    }
                    Err(Errno::ConnRefused) => return Step::Sleep(Nanos::from_millis(2)),
                    Err(e) => panic!("engine connect: {e:?}"),
                },
                2 => match k.read(self.fd, 8 - self.buf.len()) {
                    Ok(b) if b.is_empty() => return Step::Exit(0),
                    Ok(b) => {
                        self.buf.extend_from_slice(&b);
                        if self.buf.len() == 8 {
                            let task = u64::from_le_bytes(self.buf[..].try_into().expect("8"));
                            self.buf.clear();
                            if task == u64::MAX {
                                return Step::Exit(0); // shutdown
                            }
                            // "map": a deterministic function of the task.
                            let mut x = task.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
                            x ^= x >> 33;
                            self.pc = 3;
                            self.done = x;
                            return Step::Compute(300_000);
                        }
                    }
                    Err(Errno::WouldBlock) => return Step::Block,
                    Err(e) => panic!("engine read: {e:?}"),
                },
                3 => {
                    k.write(self.fd, &self.done.to_le_bytes()).expect("result");
                    self.pc = 2;
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "ipython-engine"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Launch the parallel demo: controller on `nodes[0]`, one engine per node.
pub fn launch_demo(
    w: &mut World,
    sim: &mut OsSim,
    session: Option<&dmtcp::Session>,
    nodes: &[NodeId],
    rounds: u32,
) -> Vec<Pid> {
    let controller_host = w.node(nodes[0]).hostname.clone();
    let spawn =
        |w: &mut World, sim: &mut OsSim, node: NodeId, cmd: &str, prog: Box<dyn Program>| {
            match session {
                Some(s) => s.launch(w, sim, node, cmd, prog),
                None => w.spawn(sim, node, cmd, prog, Pid(1), Default::default()),
            }
        };
    let mut pids = vec![spawn(
        w,
        sim,
        nodes[0],
        "ipcontroller",
        Box::new(IPyController {
            pc: 0,
            lfd: -1,
            engines: Vec::new(),
            n_engines: nodes.len() as u32,
            round: 0,
            rounds,
            got: Vec::new(),
            acc: 0,
            bufs: Vec::new(),
        }),
    )];
    for (i, n) in nodes.iter().enumerate() {
        pids.push(spawn(
            w,
            sim,
            *n,
            &format!("ipengine{i}"),
            Box::new(IPyEngine {
                pc: 0,
                controller: controller_host.clone(),
                fd: -1,
                buf: Vec::new(),
                done: 0,
            }),
        ));
    }
    pids
}

/// Register loaders.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<IPyShell>("ipython-shell");
    reg.register_snap::<IPyController>("ipython-controller");
    reg.register_snap::<IPyEngine>("ipython-engine");
}
