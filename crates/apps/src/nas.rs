//! NAS NPB2.4-style kernels (§5.2: CG under MPICH2; EP, LU, SP, MG, IS, BT
//! under OpenMPI).
//!
//! Each kernel really computes at simulation scale — EP's Gaussian tallies,
//! IS's distributed bucket sort (with its famously zero-heavy bucket
//! arrays, which is what makes IS compress "quickly and efficiently" in
//! §5.4), and CG's conjugate-gradient iterations are the genuine
//! algorithms with verified results. LU, SP, MG and BT share a wavefront/
//! stencil sweep engine with per-kernel communication and compute
//! constants. Every rank then maps synthetic ballast bringing it to its
//! class-C-like footprint, so image sizes and compression behaviour match
//! the paper's scale without the simulation host allocating gigabytes.

use crate::result_path;
use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::{Errno, Kernel};
use simkit::rng::DetRng;
use simkit::{Nanos, Snap};
use simmpi::coll::CollOp;
use simmpi::launch::RankFactory;
use simmpi::rt::MpiRt;
use std::rc::Rc;

/// Which kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NasKernel {
    /// Embarrassingly Parallel.
    Ep,
    /// Integer Sort.
    Is,
    /// Conjugate Gradient.
    Cg,
    /// Multi-Grid (stencil-sweep engine).
    Mg,
    /// Lower-Upper Gauss-Seidel (stencil-sweep engine).
    Lu,
    /// Scalar Pentadiagonal (stencil-sweep engine).
    Sp,
    /// Block Tridiagonal (stencil-sweep engine).
    Bt,
}
simkit::impl_snap!(
    enum NasKernel {
        Ep,
        Is,
        Cg,
        Mg,
        Lu,
        Sp,
        Bt,
    }
);

impl NasKernel {
    /// Kernel name as the figures label it.
    pub fn name(&self) -> &'static str {
        match self {
            NasKernel::Ep => "EP",
            NasKernel::Is => "IS",
            NasKernel::Cg => "CG",
            NasKernel::Mg => "MG",
            NasKernel::Lu => "LU",
            NasKernel::Sp => "SP",
            NasKernel::Bt => "BT",
        }
    }

    /// Per-rank class-C-like resident footprint (MiB of ballast), chosen so
    /// cluster-wide image sizes land in Figure 4(c)'s ranges.
    pub fn ballast_mb(&self) -> u64 {
        match self {
            NasKernel::Ep => 4,
            NasKernel::Is => 120,
            NasKernel::Cg => 60,
            NasKernel::Mg => 55,
            NasKernel::Lu => 70,
            NasKernel::Sp => 180,
            NasKernel::Bt => 200,
        }
    }

    /// Ballast compressibility: IS buckets are overwhelmingly zero
    /// (allocated against overflow, mostly unwritten — §5.4); the float
    /// kernels carry incompressible numeric data.
    pub fn ballast_profile(&self) -> FillProfile {
        match self {
            NasKernel::Is => FillProfile::Mixed {
                zero_pct: 85,
                text_pct: 0,
                code_pct: 0,
            },
            NasKernel::Ep => FillProfile::Mixed {
                zero_pct: 30,
                text_pct: 10,
                code_pct: 30,
            },
            _ => FillProfile::Mixed {
                zero_pct: 8,
                text_pct: 2,
                code_pct: 10,
            },
        }
    }

    /// Stencil-sweep constants `(halo bytes, work units, sweeps/iter)` for
    /// the kernels sharing the sweep engine.
    fn sweep_params(&self) -> (usize, u64, u32) {
        match self {
            NasKernel::Mg => (2048, 1_500_000, 2),
            NasKernel::Lu => (512, 2_500_000, 4),
            NasKernel::Sp => (4096, 3_000_000, 3),
            NasKernel::Bt => (6144, 4_000_000, 3),
            _ => unreachable!("not a sweep kernel"),
        }
    }
}

/// One NAS rank.
pub struct NasRank {
    /// Which kernel.
    pub kernel: NasKernel,
    /// MPI runtime.
    pub rt: MpiRt,
    /// Program counter.
    pub pc: u8,
    /// Iterations completed.
    pub iter: u32,
    /// Iterations requested.
    pub iters: u32,
    /// Kernel state vector (CG vectors / EP tallies / IS keys / sweep line).
    pub v0: Vec<f64>,
    /// Second state vector.
    pub v1: Vec<f64>,
    /// Third state vector.
    pub v2: Vec<f64>,
    /// Integer state (IS keys).
    pub keys: Vec<u64>,
    /// Scalar accumulator.
    pub acc: f64,
    /// Deterministic RNG.
    pub rng: DetRng,
    /// In-flight collective.
    pub coll: CollOp,
    /// Scratch for collectives.
    pub scratch: Vec<f64>,
    /// Scale factor: local problem size.
    pub local_n: u32,
    /// Sub-phase within an iteration (re-entry safety across blocks).
    pub sub: u8,
    /// Stash for values that must survive a block mid-iteration.
    pub saved: Vec<f64>,
}
simkit::impl_snap!(struct NasRank {
    kernel, rt, pc, iter, iters, v0, v1, v2, keys, acc, rng, coll, scratch, local_n,
    sub, saved
});

impl NasRank {
    /// Build rank `rank` of `size` for `kernel`.
    pub fn new(
        kernel: NasKernel,
        rank: u32,
        size: u32,
        hosts: Vec<String>,
        port: u16,
        iters: u32,
        local_n: u32,
    ) -> Self {
        NasRank {
            kernel,
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            iter: 0,
            iters,
            v0: Vec::new(),
            v1: Vec::new(),
            v2: Vec::new(),
            keys: Vec::new(),
            acc: 0.0,
            rng: DetRng::seed_from_u64(0x4a5 ^ (rank as u64) << 8 ^ kernel.ballast_mb()),
            coll: CollOp::default(),
            scratch: Vec::new(),
            local_n,
            sub: 0,
            saved: Vec::new(),
        }
    }

    fn setup(&mut self, k: &mut Kernel<'_>) {
        let mb = self.kernel.ballast_mb();
        k.mmap_synthetic(
            &format!("{}-arrays", self.kernel.name()),
            mb << 20,
            0xba11a57 ^ self.rt.rank as u64,
            self.kernel.ballast_profile(),
        );
        let n = self.local_n as usize;
        match self.kernel {
            NasKernel::Ep => {
                self.v0 = vec![0.0; 12]; // sx, sy, 10 annulus counts
            }
            NasKernel::Is => {
                self.keys = (0..n).map(|_| self.rng.below(1 << 20)).collect();
            }
            NasKernel::Cg => {
                // Ax = b with A = tridiag(-1, 3, -1) (strictly diagonally
                // dominant ⇒ CG converges); b = 1.
                self.v0 = vec![0.0; n]; // x
                self.v1 = vec![1.0; n]; // r = b
                self.v2 = vec![1.0; n]; // p
                self.acc = n as f64 * self.rt.size as f64; // rTr
            }
            _ => {
                self.v0 = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
            }
        }
    }

    fn left(&self) -> Option<u32> {
        (self.rt.rank > 0).then(|| self.rt.rank - 1)
    }
    fn right(&self) -> Option<u32> {
        (self.rt.rank + 1 < self.rt.size).then_some(self.rt.rank + 1)
    }
}

const TAG_HALO_L: u32 = 0x0010_0000;
const TAG_HALO_R: u32 = 0x0020_0000;
const TAG_IS_BOUND: u32 = 0x0030_0000;

impl Program for NasRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    self.setup(k);
                    self.pc = 1;
                }
                1 => return self.run_kernel(k),
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "nas-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

impl NasRank {
    fn finishing(&mut self, k: &mut Kernel<'_>, value: f64) -> Step {
        if !self.rt.drain_out(k) {
            return Step::Block;
        }
        if self.rt.rank == 0 {
            let path = result_path(&format!("nas-{}", self.kernel.name()));
            let fd = k.open(&path, true).expect("result file");
            k.write(fd, format!("{value:.10e}").as_bytes()).expect("w");
        }
        Step::Exit(0)
    }

    fn run_kernel(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.kernel {
            NasKernel::Ep => self.run_ep(k),
            NasKernel::Is => self.run_is(k),
            NasKernel::Cg => self.run_cg(k),
            _ => self.run_sweep(k),
        }
    }

    // ---- EP: Gaussian pairs via Marsaglia polar, annulus tallies ----
    fn run_ep(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.iter < self.iters {
            // One batch of pairs.
            for _ in 0..self.local_n {
                let x = 2.0 * self.rng.unit_f64() - 1.0;
                let y = 2.0 * self.rng.unit_f64() - 1.0;
                let t = x * x + y * y;
                if t <= 1.0 && t > 0.0 {
                    let f = (-2.0 * t.ln() / t).sqrt();
                    let (gx, gy) = (x * f, y * f);
                    self.v0[0] += gx;
                    self.v0[1] += gy;
                    let l = gx.abs().max(gy.abs()) as usize;
                    if l < 10 {
                        self.v0[2 + l] += 1.0;
                    }
                }
            }
            self.iter += 1;
            return Step::Compute(self.local_n as u64 * 60);
        }
        // Final allreduce of the tallies.
        if self.scratch.is_empty() && self.coll == CollOp::default() {
            self.coll = CollOp::begin(&mut self.rt);
        }
        let contrib = self.v0.clone();
        let mut out = std::mem::take(&mut self.scratch);
        let done = self
            .coll
            .allreduce_sum_f64(&mut self.rt, k, &contrib, &mut out);
        self.scratch = out;
        if !done {
            return Step::Block;
        }
        let value = self.scratch[0] + self.scratch[1] + self.scratch[2..].iter().sum::<f64>();
        self.finishing(k, value)
    }

    // ---- IS: distributed bucket sort with boundary verification ----
    //
    // Each *round* bucket-exchanges the keys (alltoall), sorts locally,
    // verifies global order against the left neighbor, and allreduces a
    // permutation-invariant checksum; `iters` rounds run back to back (the
    // benchmark form keeps re-ranking fresh keys).
    fn run_is(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.sub {
                // Phase 0: exchange keys so rank r gets range slice r.
                0 => {
                    let size = self.rt.size as u64;
                    let width = (1u64 << 20) / size + 1;
                    let mut sends: Vec<Vec<u8>> = vec![Vec::new(); size as usize];
                    for &key in &self.keys {
                        let dest = (key / width).min(size - 1) as usize;
                        sends[dest].extend_from_slice(&key.to_le_bytes());
                    }
                    if self.v0.is_empty() {
                        self.coll = CollOp::begin(&mut self.rt);
                        self.v0 = vec![0.0]; // marker: collective started
                    }
                    let mut recvs: Vec<Option<Vec<u8>>> = vec![None; size as usize];
                    if !self.coll.alltoall(&mut self.rt, k, &sends, &mut recvs) {
                        return Step::Block;
                    }
                    self.keys = recvs
                        .into_iter()
                        .flat_map(|r| simmpi::bytes_to_u64s(&r.expect("alltoall complete")))
                        .collect();
                    self.keys.sort_unstable();
                    self.sub = 1;
                    // Ranking + local sort cost: keeps the alltoall rate at
                    // benchmark-like intervals rather than a message storm.
                    return Step::Compute(self.local_n as u64 * 2_500);
                }
                // Phase 1: send my max to the right neighbor.
                1 => {
                    if let Some(r) = self.right() {
                        let maxv = self.keys.last().copied().unwrap_or(0);
                        self.rt
                            .send(r, TAG_IS_BOUND + self.iter, &maxv.to_le_bytes());
                    }
                    self.sub = 2;
                }
                // Phase 2: verify against the left neighbor's max.
                2 => {
                    if let Some(l) = self.left() {
                        match self.rt.recv_or_block(k, l, TAG_IS_BOUND + self.iter) {
                            Some(d) => {
                                let left_max = u64::from_le_bytes(d[..8].try_into().expect("8"));
                                if let Some(&my_min) = self.keys.first() {
                                    assert!(left_max <= my_min, "global sort order violated");
                                }
                            }
                            None => return Step::Block,
                        }
                    }
                    self.sub = 3;
                }
                // Phase 3: checksum allreduce (permutation-invariant).
                _ => {
                    if self.v1.is_empty() {
                        self.coll = CollOp::begin(&mut self.rt);
                        self.v1 = vec![0.0];
                    }
                    let local_sum: f64 = self.keys.iter().map(|&x| x as f64).sum();
                    let contrib = [local_sum, self.keys.len() as f64];
                    let mut out = std::mem::take(&mut self.scratch);
                    let done = self
                        .coll
                        .allreduce_sum_f64(&mut self.rt, k, &contrib, &mut out);
                    self.scratch = out;
                    if !done {
                        return Step::Block;
                    }
                    self.iter += 1;
                    if self.iter >= self.iters {
                        let value = self.scratch[0] + self.scratch[1];
                        return self.finishing(k, value);
                    }
                    // Next round: fresh keys, fresh collective markers.
                    let n = self.local_n as usize;
                    self.keys = (0..n).map(|_| self.rng.below(1 << 20)).collect();
                    self.v0 = Vec::new();
                    self.v1 = Vec::new();
                    self.scratch = Vec::new();
                    self.coll = CollOp::default();
                    self.sub = 0;
                }
            }
        }
    }

    // ---- CG on a distributed tridiagonal system ----
    //
    // A = tridiag(-1, 3, -1) over the concatenation of all ranks' slices;
    // b = 1. v0 = x, v1 = r, v2 = p. Each iteration:
    //   halo-exchange boundary p  →  q = A·p  →  allreduce [pᵀq, rᵀr]
    //   →  α update of x, r       →  allreduce new rᵀr  →  β update of p.
    // `sub` tracks the phase so a checkpoint (or socket block) anywhere
    // inside the iteration resumes without duplicating sends.
    fn run_cg(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            if self.iter >= self.iters && self.sub == 0 {
                if self.saved.len() != 1 {
                    self.coll = CollOp::begin(&mut self.rt);
                    self.saved = vec![1.0];
                }
                let local: f64 = self.v1.iter().map(|r| r * r).sum();
                let mut out = std::mem::take(&mut self.scratch);
                let done = self
                    .coll
                    .allreduce_sum_f64(&mut self.rt, k, &[local], &mut out);
                self.scratch = out;
                if !done {
                    return Step::Block;
                }
                let value = self.scratch[0].sqrt();
                return self.finishing(k, value);
            }
            let n = self.v2.len();
            match self.sub {
                0 => {
                    if let Some(l) = self.left() {
                        self.rt
                            .send(l, TAG_HALO_L + self.iter, &self.v2[0].to_le_bytes());
                    }
                    if let Some(r) = self.right() {
                        self.rt
                            .send(r, TAG_HALO_R + self.iter, &self.v2[n - 1].to_le_bytes());
                    }
                    self.saved.clear();
                    self.sub = 1;
                }
                1 => {
                    let v = match self.left() {
                        Some(l) => match self.rt.recv_or_block(k, l, TAG_HALO_R + self.iter) {
                            Some(d) => f64::from_le_bytes(d[..8].try_into().expect("8")),
                            None => return Step::Block,
                        },
                        None => 0.0,
                    };
                    self.saved.push(v); // p_left
                    self.sub = 2;
                }
                2 => {
                    let v = match self.right() {
                        Some(r) => match self.rt.recv_or_block(k, r, TAG_HALO_L + self.iter) {
                            Some(d) => f64::from_le_bytes(d[..8].try_into().expect("8")),
                            None => return Step::Block,
                        },
                        None => 0.0,
                    };
                    self.saved.push(v); // p_right
                                        // q is a pure function of (v2, saved); compute the dots.
                    let q = self.q_of_p();
                    let p_dot_q: f64 = self.v2.iter().zip(&q).map(|(p, q)| p * q).sum();
                    let r_dot_r: f64 = self.v1.iter().map(|r| r * r).sum();
                    self.saved.push(p_dot_q);
                    self.saved.push(r_dot_r);
                    self.coll = CollOp::begin(&mut self.rt);
                    self.sub = 3;
                    return Step::Compute(self.local_n as u64 * 120);
                }
                3 => {
                    let contrib = [self.saved[2], self.saved[3]];
                    let mut out = Vec::new();
                    if !self
                        .coll
                        .allreduce_sum_f64(&mut self.rt, k, &contrib, &mut out)
                    {
                        return Step::Block;
                    }
                    let (gpq, grr) = (out[0], out[1]);
                    if grr < 1e-280 || gpq.abs() < 1e-280 {
                        // Converged to machine zero: further α/β updates
                        // would divide 0/0. Restart the solve from x = 0
                        // (benchmark form: every rank sees the same global
                        // dot products, so all reset in lockstep), counting
                        // the iteration.
                        let n = self.v0.len();
                        self.v0 = vec![0.0; n];
                        self.v1 = vec![1.0; n];
                        self.v2 = vec![1.0; n];
                        self.iter += 1;
                        self.sub = 0;
                        self.saved.clear();
                        self.coll = CollOp::default();
                        continue;
                    }
                    let alpha = grr / gpq;
                    let q = self.q_of_p();
                    for (i, qi) in q.iter().enumerate().take(n) {
                        self.v0[i] += alpha * self.v2[i];
                        self.v1[i] -= alpha * qi;
                    }
                    let new_rr_local: f64 = self.v1.iter().map(|r| r * r).sum();
                    self.saved.push(grr);
                    self.saved.push(new_rr_local);
                    self.coll = CollOp::begin(&mut self.rt);
                    self.sub = 4;
                }
                4 => {
                    let contrib = [self.saved[5]];
                    let mut out = Vec::new();
                    if !self
                        .coll
                        .allreduce_sum_f64(&mut self.rt, k, &contrib, &mut out)
                    {
                        return Step::Block;
                    }
                    let grr = self.saved[4];
                    let beta = out[0] / grr;
                    for i in 0..n {
                        self.v2[i] = self.v1[i] + beta * self.v2[i];
                    }
                    self.acc = out[0];
                    self.iter += 1;
                    self.sub = 0;
                    self.saved.clear();
                    self.coll = CollOp::default();
                }
                _ => unreachable!(),
            }
        }
    }

    /// q = A·p given the stashed halo values (saved[0], saved[1]).
    fn q_of_p(&self) -> Vec<f64> {
        let n = self.v2.len();
        (0..n)
            .map(|i| {
                let left = if i == 0 {
                    self.saved[0]
                } else {
                    self.v2[i - 1]
                };
                let right = if i + 1 == n {
                    self.saved[1]
                } else {
                    self.v2[i + 1]
                };
                3.0 * self.v2[i] - left - right
            })
            .collect()
    }

    // ---- Stencil sweep engine (MG/LU/SP/BT) ----
    fn run_sweep(&mut self, k: &mut Kernel<'_>) -> Step {
        let (halo_bytes, work, sweeps) = self.kernel.sweep_params();
        loop {
            if self.iter >= self.iters * sweeps && self.sub == 0 {
                if self.v1.is_empty() {
                    self.coll = CollOp::begin(&mut self.rt);
                    self.v1 = vec![1.0];
                }
                let local: f64 = self.v0.iter().sum();
                let mut out = std::mem::take(&mut self.scratch);
                let done = self
                    .coll
                    .allreduce_sum_f64(&mut self.rt, k, &[local], &mut out);
                self.scratch = out;
                if !done {
                    return Step::Block;
                }
                let value = self.scratch[0];
                return self.finishing(k, value);
            }
            let tag_salt = self.iter;
            match self.sub {
                0 => {
                    let slab: Vec<u8> = {
                        let b0 = self.v0.first().copied().unwrap_or(0.0).to_le_bytes();
                        b0.iter().copied().cycle().take(halo_bytes).collect()
                    };
                    if let Some(l) = self.left() {
                        self.rt.send(l, TAG_HALO_L + tag_salt, &slab);
                    }
                    if let Some(r) = self.right() {
                        self.rt.send(r, TAG_HALO_R + tag_salt, &slab);
                    }
                    self.sub = 1;
                }
                1 => {
                    if let Some(l) = self.left() {
                        match self.rt.recv_or_block(k, l, TAG_HALO_R + tag_salt) {
                            Some(d) => {
                                let x = f64::from_le_bytes(d[..8].try_into().expect("8"));
                                self.v0[0] = 0.5 * (self.v0[0] + x) + 0.01;
                            }
                            None => return Step::Block,
                        }
                    }
                    self.sub = 2;
                }
                2 => {
                    if let Some(r) = self.right() {
                        match self.rt.recv_or_block(k, r, TAG_HALO_L + tag_salt) {
                            Some(d) => {
                                let x = f64::from_le_bytes(d[..8].try_into().expect("8"));
                                let n = self.v0.len();
                                self.v0[n - 1] = 0.5 * (self.v0[n - 1] + x) + 0.01;
                            }
                            None => return Step::Block,
                        }
                    }
                    // Interior relaxation.
                    let n = self.v0.len();
                    for i in 1..n.saturating_sub(1) {
                        self.v0[i] =
                            0.25 * self.v0[i - 1] + 0.5 * self.v0[i] + 0.25 * self.v0[i + 1];
                    }
                    self.iter += 1;
                    self.sub = 0;
                    return Step::Compute(work);
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Rank factory for a kernel.
pub fn nas_factory(kernel: NasKernel, iters: u32, local_n: u32) -> RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(NasRank::new(
            kernel, rank, size, hosts, port, iters, local_n,
        )) as Box<dyn Program>
    })
}

/// A "hello world" MPI baseline (the paper's `Baseline[2]`/`Baseline[3]`):
/// ranks wire up, exchange one round of greetings, then idle until killed
/// or checkpointed — measuring the cost of checkpointing the MPI plumbing
/// itself.
pub struct BaselineRank {
    /// Runtime.
    pub rt: MpiRt,
    /// Program counter.
    pub pc: u8,
    /// Collective state.
    pub coll: CollOp,
    /// How long to idle (virtual) before exiting; 0 = forever.
    pub linger_ms: u64,
    /// Elapsed idle.
    pub idled_ms: u64,
}
simkit::impl_snap!(struct BaselineRank { rt, pc, coll, linger_ms, idled_ms });

impl Program for BaselineRank {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    if !self.rt.init(k) {
                        return Step::Sleep(Nanos::from_millis(1));
                    }
                    k.mmap_synthetic(
                        "mpi-runtime",
                        2 << 20,
                        99,
                        FillProfile::Mixed {
                            zero_pct: 20,
                            text_pct: 20,
                            code_pct: 40,
                        },
                    );
                    self.coll = CollOp::begin(&mut self.rt);
                    self.pc = 1;
                }
                1 => {
                    if !self.coll.barrier(&mut self.rt, k) {
                        return Step::Block;
                    }
                    self.pc = 2;
                }
                2 => {
                    if self.linger_ms > 0 && self.idled_ms >= self.linger_ms {
                        if !self.rt.drain_out(k) {
                            return Step::Block;
                        }
                        if self.rt.rank == 0 {
                            let fd = k.open(&result_path("baseline"), true).expect("result");
                            k.write(fd, b"hello world").expect("w");
                        }
                        return Step::Exit(0);
                    }
                    self.idled_ms += 10;
                    return Step::Sleep(Nanos::from_millis(10));
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "baseline-rank"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Factory for the baseline.
pub fn baseline_factory(linger_ms: u64) -> RankFactory {
    Rc::new(move |rank, size, hosts, port| {
        Box::new(BaselineRank {
            rt: MpiRt::new(rank, size, port, hosts),
            pc: 0,
            coll: CollOp::default(),
            linger_ms,
            idled_ms: 0,
        }) as Box<dyn Program>
    })
}

/// Register NAS program loaders.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<NasRank>("nas-rank");
    reg.register_snap::<BaselineRank>("baseline-rank");
}

#[allow(unused)]
fn _unused(_: Errno) {}
