//! RunCMS (§5.1): the CMS experiment's reconstruction job — "a 680 MB
//! image in memory that includes 540 dynamic libraries", used at CERN with
//! DMTCP as the cure for its half-hour startup ("undump" use case 2).
//!
//! The paper measures: checkpoint 25.2 s, restart 18.4 s, 225 MB gzip'd
//! image. We model the process faithfully in structure: 540 individually
//! mapped library regions plus database-derived heap data, totalling
//! 680 MB, after a long simulated initialization phase.

use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::Kernel;
use simkit::{Nanos, Snap};

/// Number of dynamic libraries the paper counts in `/proc/<pid>/maps`.
pub const RUNCMS_LIBS: u32 = 540;
/// Total footprint in MiB.
pub const RUNCMS_MB: u64 = 680;

/// The RunCMS process.
pub struct RunCms {
    /// Program counter.
    pub pc: u8,
    /// Libraries mapped so far (initialization progresses stepwise —
    /// that is the slow startup DMTCP's "undump" replaces).
    pub libs_loaded: u32,
    /// Events processed after initialization.
    pub events: u64,
}
simkit::impl_snap!(struct RunCms { pc, libs_loaded, events });

impl RunCms {
    /// A fresh (un-initialized) RunCMS.
    pub fn new() -> Self {
        RunCms {
            pc: 0,
            libs_loaded: 0,
            events: 0,
        }
    }
}

impl Default for RunCms {
    fn default() -> Self {
        Self::new()
    }
}

impl Program for RunCms {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        loop {
            match self.pc {
                0 => {
                    // Load libraries in batches (linking 540 shared objects
                    // is a large part of the real startup cost).
                    let batch = 20.min(RUNCMS_LIBS - self.libs_loaded);
                    // 540 libraries summing to half the footprint ≈ 645 KiB
                    // apiece (Geant4/ROOT-sized shared objects).
                    let lib_bytes = ((RUNCMS_MB / 2) << 20) / RUNCMS_LIBS as u64;
                    for i in 0..batch {
                        let idx = self.libs_loaded + i;
                        k.map_library(&format!("libCMS{idx:03}.so"), lib_bytes, 0xc35 ^ idx as u64);
                    }
                    self.libs_loaded += batch;
                    if self.libs_loaded >= RUNCMS_LIBS {
                        self.pc = 1;
                    }
                    // Dynamic linking + database fetches: ~1.3 s per batch
                    // ⇒ ≈ 35 s of simulated startup for 27 batches (the
                    // paper reports 10–30 minutes against real conditions
                    // DB latency; we only need "long").
                    return Step::Sleep(Nanos::from_millis(1300));
                }
                1 => {
                    // Conditions-database-derived heap (numeric, partially
                    // compressible — calibrated to gzip to ≈ 225 MB total).
                    k.mmap_synthetic(
                        "conditions-heap",
                        (RUNCMS_MB / 2) << 20,
                        0xc36,
                        FillProfile::Mixed {
                            zero_pct: 30,
                            text_pct: 30,
                            code_pct: 25,
                        },
                    );
                    self.pc = 2;
                }
                2 => {
                    // Event loop.
                    self.events += 1;
                    return Step::Compute(3_000_000);
                }
                _ => unreachable!(),
            }
        }
    }
    fn tag(&self) -> &'static str {
        "runcms"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

/// Register the loader.
pub fn register(reg: &mut Registry) {
    reg.register_snap::<RunCms>("runcms");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_constants_match_the_paper() {
        assert_eq!(RUNCMS_LIBS, 540);
        assert_eq!(RUNCMS_MB, 680);
    }
}
