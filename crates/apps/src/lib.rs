//! `apps` — the workloads of the paper's evaluation (§5).
//!
//! Two families:
//!
//! * **Desktop applications** ([`desktop`]) — the 21 shell-like programs of
//!   Figure 3 (bc … vim/cscope), modelled as interactive loops with memory
//!   footprints and compressibility mixes calibrated to the figure, plus
//!   the multi-process ones (TightVNC+TWM over a pty, vim/cscope over a
//!   pipe). [`runcms`] is the 680 MB / 540-dynamic-library CMS job.
//! * **Distributed applications** ([`nas`], [`geant`], [`ipython`],
//!   [`memhog`]) — NAS-NPB-style kernels with genuinely computed, verified
//!   numerics at simulation scale plus synthetic ballast bringing each rank
//!   to its class-C footprint; ParGeant4 as TOP-C master/worker Monte
//!   Carlo; the iPython shell and parallel demo; and Figure 6's synthetic
//!   memory hog.
//!
//! Every application here is *checkpoint-unaware*: plain programs against
//! the kernel API, registered in [`registry::register_all`] so restarts can
//! reconstruct them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod desktop;
pub mod geant;
pub mod ipython;
pub mod memhog;
pub mod nas;
pub mod registry;
pub mod runcms;

pub use registry::register_all;

/// Marker written by distributed apps when they complete, for harnesses.
pub const RESULT_DIR: &str = "/shared/results";

/// Result path for a named app.
pub fn result_path(name: &str) -> String {
    format!("{RESULT_DIR}/{name}")
}
