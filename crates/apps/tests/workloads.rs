//! Workload correctness: the kernels compute verified results, run under
//! both MPI flavors, and survive checkpoint/kill/restart bit-identically.

use apps::nas::{nas_factory, NasKernel};
use apps::registry::full_registry;
use apps::result_path;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::world::{NodeId, OsSim, World};
use oskit::HwSpec;
use simkit::{Nanos, Sim};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const EV: u64 = 30_000_000;

fn world(nodes: usize) -> (World, OsSim) {
    (
        World::new(HwSpec::cluster(), nodes, full_registry()),
        Sim::new(),
    )
}

fn job(nodes: usize, ppn: usize, flavor: Flavor) -> MpiJob {
    MpiJob {
        flavor,
        nodes: (0..nodes as u32).map(NodeId).collect(),
        procs_per_node: ppn,
        base_port: 30_000,
    }
}

fn nas_result(w: &World, kernel: NasKernel) -> Option<String> {
    w.shared_fs
        .read_all(&result_path(&format!("nas-{}", kernel.name())))
        .ok()
        .map(|b| String::from_utf8(b).expect("utf8"))
}

fn run_nas(kernel: NasKernel, nodes: usize, ppn: usize, iters: u32, local_n: u32) -> String {
    let (mut w, mut sim) = world(nodes);
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Raw,
        &job(nodes, ppn, Flavor::OpenMpi),
        nas_factory(kernel, iters, local_n),
    );
    assert!(sim.run_bounded(&mut w, EV), "{} deadlocked", kernel.name());
    nas_result(&w, kernel).expect("kernel finished")
}

#[test]
fn ep_tallies_are_deterministic_and_rank_dependent() {
    let a = run_nas(NasKernel::Ep, 2, 2, 4, 2_000);
    assert_eq!(a, run_nas(NasKernel::Ep, 2, 2, 4, 2_000), "determinism");
    let b = run_nas(NasKernel::Ep, 2, 2, 4, 1_000);
    assert_ne!(a, b, "scale must change the tallies");
}

#[test]
fn is_sorts_globally() {
    // The kernel itself asserts boundary order; the result is the global
    // key-sum + count, which must match the direct computation.
    let got = run_nas(NasKernel::Is, 2, 2, 1, 3_000);
    // Recompute expected: same RNG streams as NasRank::setup.
    let mut expect_sum = 0.0f64;
    let mut expect_cnt = 0.0f64;
    for rank in 0..4u32 {
        let mut rng = simkit::rng::DetRng::seed_from_u64(
            0x4a5 ^ (rank as u64) << 8 ^ NasKernel::Is.ballast_mb(),
        );
        for _ in 0..3_000 {
            expect_sum += rng.below(1 << 20) as f64;
            expect_cnt += 1.0;
        }
    }
    let expect = format!("{:.10e}", expect_sum + expect_cnt);
    assert_eq!(got, expect, "IS checksum");
}

#[test]
fn cg_residual_decreases_and_is_deterministic() {
    let r10 = run_nas(NasKernel::Cg, 2, 2, 10, 400);
    let r30 = run_nas(NasKernel::Cg, 2, 2, 30, 400);
    let v10: f64 = r10.parse().expect("f64");
    let v30: f64 = r30.parse().expect("f64");
    assert!(v10.is_finite() && v30.is_finite());
    assert!(
        v30 < v10 * 0.5,
        "CG must converge: ‖r‖ after 30 iters {v30} vs after 10 {v10}"
    );
    assert_eq!(r10, run_nas(NasKernel::Cg, 2, 2, 10, 400));
}

#[test]
fn sweep_kernels_run_and_differ() {
    let mg = run_nas(NasKernel::Mg, 2, 2, 3, 500);
    let lu = run_nas(NasKernel::Lu, 2, 2, 3, 500);
    assert!(mg.parse::<f64>().expect("f64").is_finite());
    assert_ne!(mg, lu, "kernel constants differ");
}

#[test]
fn nas_cg_survives_checkpoint_kill_restart() {
    let iters = 200;
    let reference = run_nas(NasKernel::Cg, 2, 2, iters, 2_000);

    let (mut w, mut sim) = world(2);
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job(2, 2, Flavor::OpenMpi),
        nas_factory(NasKernel::Cg, iters, 2_000),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(100));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let gen = stat.gen;
    assert_eq!(stat.participants, 7, "console + 2 orted + 4 ranks");
    s.kill_computation(&mut w, &mut sim);
    RestartPlan::from_generation(&w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(&s, &mut w, &mut sim)
        .expect("identity restart");
    Session::wait_restart_done(&mut w, &mut sim, gen, EV);
    assert!(sim.run_bounded(&mut w, EV), "restored CG deadlocked");
    assert_eq!(
        nas_result(&w, NasKernel::Cg).expect("finished"),
        reference,
        "CG result diverged across checkpoint/restart"
    );
}

#[test]
fn ipython_demo_completes_and_is_deterministic() {
    let run = || -> String {
        let (mut w, mut sim) = world(2);
        let nodes: Vec<NodeId> = vec![NodeId(0), NodeId(1)];
        apps::ipython::launch_demo(&mut w, &mut sim, None, &nodes, 25);
        assert!(sim.run_bounded(&mut w, EV), "ipython deadlocked");
        String::from_utf8(
            w.shared_fs
                .read_all(&result_path("ipython-demo"))
                .expect("result"),
        )
        .expect("utf8")
    };
    assert_eq!(run(), run());
}

#[test]
fn desktop_catalogue_images_scale_with_footprint() {
    // Launch bc (tiny) and matlab (big) under DMTCP on the desktop machine
    // and compare image sizes after one checkpoint.
    let mut w = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim = Sim::new();
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    let bc = apps::desktop::spec_by_name("bc").expect("bc");
    let matlab = apps::desktop::spec_by_name("matlab").expect("matlab");
    apps::desktop::launch_desktop(&mut w, &mut sim, Some(&s), NodeId(0), bc, 1);
    apps::desktop::launch_desktop(&mut w, &mut sim, Some(&s), NodeId(0), matlab, 2);
    run_for(&mut w, &mut sim, Nanos::from_millis(30));
    s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    let sizes: Vec<(String, u64)> = w
        .shared_fs
        .list_prefix("/shared/ckpt/")
        .map(|p| (p.to_string(), w.shared_fs.size(p).expect("image")))
        .collect();
    assert_eq!(sizes.len(), 2);
    let max = sizes.iter().map(|(_, s)| *s).max().expect("two");
    let min = sizes.iter().map(|(_, s)| *s).min().expect("two");
    assert!(max > min * 10, "matlab image must dwarf bc: {sizes:?}");
    // And compression must have bitten: matlab raw is 89 MiB.
    assert!(max < 70 << 20, "compression applied: {max}");
}

#[test]
fn vnc_session_checkpoints_with_live_viewer_pattern() {
    // TightVNC+TWM: 3 processes with a pty and sockets; checkpoint and
    // verify participants.
    let mut w = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim = Sim::new();
    let s = Session::start(
        &mut w,
        &mut sim,
        Options::builder().ckpt_dir("/shared/ckpt").build(),
    );
    let spec = apps::desktop::spec_by_name("tightvnc+twm").expect("vnc");
    apps::desktop::launch_desktop(&mut w, &mut sim, Some(&s), NodeId(0), spec, 3);
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    let stat = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    assert_eq!(stat.participants, 3, "vncserver + twm + xterm");
    // The session keeps serving updates after the checkpoint.
    run_for(&mut w, &mut sim, Nanos::from_millis(40));
    assert!(w.live_procs() >= 4); // 3 apps + coordinator
}

#[test]
fn runcms_profile_builds_the_documented_footprint() {
    let mut w = World::new(HwSpec::desktop(), 1, full_registry());
    let mut sim = Sim::new();
    let pid = w.spawn(
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
        oskit::world::Pid(1),
        Default::default(),
    );
    // Let initialization finish (~35 s of simulated library loading).
    sim.run_until(&mut w, Nanos::from_secs(60));
    let p = &w.procs[&pid];
    let maps = w.proc_maps(pid).expect("maps");
    let lib_count = maps.matches(".so").count();
    assert!(lib_count >= 540, "libraries mapped: {lib_count}");
    let total = p.mem.total_bytes();
    assert!(
        (600 << 20..760 << 20).contains(&total),
        "footprint ≈ 680 MB, got {} MB",
        total >> 20
    );
}
