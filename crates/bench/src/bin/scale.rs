//! Coordinator scale-out: Figure-6-style sweep of process count, flat star
//! vs hierarchical (per-node relay) topology.
//!
//! The paper's coordinator is a flat star: every manager registers with the
//! root, so each barrier stage costs the root O(processes) wire messages.
//! The relay tier collapses all managers on a node into one root client,
//! dropping root protocol work to O(nodes). This bench measures what that
//! buys: N sleeper processes with a small memory ballast spread over a
//! 64-node cluster, N swept from well below the node count to 64× past it
//! (256× with `DMTCP_SCALE_FULL=1`, the nightly profile), checkpointed
//! under both topologies.
//!
//! Reported per (topology, N): checkpoint wall time, root coordinator
//! messages per generation (the `coord.root_msgs` counter: every frame the
//! root sends or receives), and the longest single barrier-stage latency.
//!
//! Acceptance bar (enforced here, tracked by `scripts/bench_gate.sh`): at
//! N = 1024 the hierarchical topology must cut root messages per generation
//! at least 8× below flat, without making checkpoints slower.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin scale`
//! Pass `--smoke` for the single-repetition variant tier-1 runs. Also
//! writes the flat `results/BENCH_scale.json` consumed by the CI
//! bench-regression gate.

use dmtcp::coord::{stage, GenStat};
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, Session, Topology};
use dmtcp_bench::{cluster_world, write_jsonl_lines, EV};
use obs::json::JsonWriter;
use oskit::program::{Program, Step};
use oskit::world::NodeId;
use oskit::Kernel;
use simkit::{Nanos, Snap};

const NODES: usize = 64;
/// Ballast per process: enough that the image stage does real work, small
/// enough that protocol traffic — not I/O — dominates at every N.
const BALLAST: u64 = 256 << 10;
/// Sweep points every run. The timer-wheel engine (ISSUE 9) makes 4096
/// cheap enough for PR CI; 8192/16384 are nightly-only (see [`points`]).
const POINTS: [usize; 6] = [16, 64, 256, 1024, 2048, 4096];
/// Nightly-only extension, enabled by `DMTCP_SCALE_FULL=1` (the scheduled
/// CI run sets it): the range where the flat star's collapse and the
/// O(nodes) relay claim are measured rather than extrapolated.
const FULL_POINTS: [usize; 2] = [8_192, 16_384];

/// The points this invocation sweeps. `DMTCP_SCALE_POINTS` (comma-separated
/// process counts) overrides the profile entirely — the knob for reproducing
/// a single red point locally without sweeping the rest.
fn points() -> Vec<usize> {
    if let Ok(v) = std::env::var("DMTCP_SCALE_POINTS") {
        return v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("DMTCP_SCALE_POINTS: process counts")
            })
            .collect();
    }
    let mut pts = POINTS.to_vec();
    if std::env::var("DMTCP_SCALE_FULL").is_ok_and(|v| v == "1") {
        pts.extend(FULL_POINTS);
    }
    pts
}

/// A process that allocates its ballast once and then sleeps in a loop —
/// the per-process cost floor, so the sweep isolates coordinator work.
struct Sleeper {
    pc: u8,
}
simkit::impl_snap!(struct Sleeper { pc });
impl Program for Sleeper {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            k.mmap_synthetic("ballast", BALLAST, 0x5ca1e, oskit::mem::FillProfile::Random);
            self.pc = 1;
        }
        Step::Sleep(Nanos::from_millis(10))
    }
    fn tag(&self) -> &'static str {
        "scale-sleeper"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

struct Row {
    topo: Topology,
    n: usize,
    /// Mean request → CHECKPOINTED, seconds.
    ckpt_s: f64,
    /// Mean root coordinator messages (in + out) per generation.
    root_msgs_per_gen: f64,
    /// Longest single barrier-stage latency seen in any generation, seconds.
    max_stage_s: f64,
}

fn topo_name(t: Topology) -> &'static str {
    match t {
        Topology::Flat => "flat",
        Topology::Hierarchical => "hier",
    }
}

/// Longest gap between consecutive barrier releases (from the request),
/// over the stop-the-world stages.
fn max_stage_latency(g: &GenStat) -> f64 {
    const ORDER: [u8; 6] = [
        stage::SUSPENDED,
        stage::ELECTED,
        stage::DRAINED,
        stage::CHECKPOINTED,
        stage::REFILLED,
        stage::CKPT_WRITTEN,
    ];
    let mut prev = g.requested_at;
    let mut worst = Nanos::ZERO;
    for s in ORDER {
        if let Some(&t) = g.releases.get(&s) {
            if t - prev > worst {
                worst = t - prev;
            }
            prev = t;
        }
    }
    worst.as_secs_f64()
}

fn run_point(topo: Topology, n: usize, reps: usize) -> Row {
    let (mut w, mut sim) = cluster_world(NODES);
    let opts = Options::builder().ckpt_dir("/ckpt").topology(topo).build();
    let s = Session::start(&mut w, &mut sim, opts);
    for i in 0..n {
        s.launch(
            &mut w,
            &mut sim,
            NodeId((i % NODES) as u32),
            "sleeper",
            Box::new(Sleeper { pc: 0 }),
        );
    }
    // Let every manager (and relay) connect and register.
    run_for(&mut w, &mut sim, Nanos::from_millis(200));

    let mut ckpt = 0.0;
    let mut msgs = 0.0;
    let mut worst_stage = 0.0f64;
    for _ in 0..reps {
        let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
        let g: GenStat = Session::wait_ckpt_written(&mut w, &mut sim, g.gen, EV)
            .expect("no faults armed: the write settles");
        assert_eq!(g.participants as usize, n, "every process checkpointed");
        ckpt += g.checkpoint_time().expect("complete").as_secs_f64();
        msgs += w.obs.metrics.counter("coord.root_msgs", g.gen) as f64;
        worst_stage = worst_stage.max(max_stage_latency(&g));
        run_for(&mut w, &mut sim, Nanos::from_millis(50));
    }
    Row {
        topo,
        n,
        ckpt_s: ckpt / reps as f64,
        root_msgs_per_gen: msgs / reps as f64,
        max_stage_s: worst_stage,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { dmtcp_bench::reps() };
    let points = points();
    println!("# scale: root coordinator load, flat star vs per-node relays");
    println!("# {NODES}-node cluster, sleeper procs with {BALLAST}-byte ballast, {reps} reps\n");

    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = points
        .iter()
        .flat_map(|&n| {
            [Topology::Flat, Topology::Hierarchical]
                .into_iter()
                .map(move |t| {
                    Box::new(move || run_point(t, n, reps)) as Box<dyn FnOnce() -> Row + Send>
                })
        })
        .collect();
    let rows = dmtcp_bench::run_parallel(jobs);

    let find = |t: Topology, n: usize| {
        rows.iter()
            .find(|r| r.topo == t && r.n == n)
            .expect("point ran")
    };

    println!("      N   topology   ckpt      root msgs/gen   max stage    reduction");
    let mut lines = Vec::new();
    for &n in &points {
        let f = find(Topology::Flat, n);
        let h = find(Topology::Hierarchical, n);
        let ratio = f.root_msgs_per_gen / h.root_msgs_per_gen.max(1.0);
        for r in [f, h] {
            println!(
                "  {:>5}   {:<8}  {:>6.3}s  {:>12.0}   {:>8.3}s    {}",
                r.n,
                topo_name(r.topo),
                r.ckpt_s,
                r.root_msgs_per_gen,
                r.max_stage_s,
                if r.topo == Topology::Hierarchical {
                    format!("{ratio:.1}x")
                } else {
                    String::new()
                }
            );
            let mut j = JsonWriter::new();
            j.obj_begin()
                .field_str("topology", topo_name(r.topo))
                .field_u64("n", r.n as u64)
                .field_f64("ckpt_s", r.ckpt_s)
                .field_f64("root_msgs_per_gen", r.root_msgs_per_gen)
                .field_f64("max_stage_s", r.max_stage_s)
                .obj_end();
            lines.push(j.into_string());
        }
    }
    match write_jsonl_lines("scale", lines) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }

    // Flat key/value file for the CI bench-regression gate. `_s` and
    // `_per_gen` keys gate "lower is better"; `_ratio` keys gate "higher
    // is better" (see scripts/bench_gate.sh).
    // Nightly-only keys (N > 4096) must stay out of the committed baseline:
    // the gate fails on baseline keys missing from the results, and PR runs
    // don't produce them. In a nightly run they appear here as "new" keys,
    // which the gate only notes.
    let mut out = String::from("{\n");
    for &n in &points {
        let f = find(Topology::Flat, n);
        let h = find(Topology::Hierarchical, n);
        let ratio = f.root_msgs_per_gen / h.root_msgs_per_gen.max(1.0);
        for (key, v) in [
            (format!("scale_flat_n{n}_ckpt_s"), f.ckpt_s),
            (format!("scale_hier_n{n}_ckpt_s"), h.ckpt_s),
            (
                format!("scale_flat_n{n}_root_msgs_per_gen"),
                f.root_msgs_per_gen,
            ),
            (
                format!("scale_hier_n{n}_root_msgs_per_gen"),
                h.root_msgs_per_gen,
            ),
            (format!("scale_n{n}_root_msgs_reduction_ratio"), ratio),
        ] {
            out.push_str(&format!("  \"{key}\": {v:.6},\n"));
        }
    }
    out.truncate(out.len() - 2); // drop trailing ",\n"
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write("results/BENCH_scale.json", &out) {
        eprintln!("# BENCH_scale.json write failed: {e}");
    } else {
        println!("# wrote results/BENCH_scale.json");
    }

    // Acceptance bar: the whole point of the relay tier.
    let mut bad = Vec::new();
    for &n in points.iter().filter(|&&n| n >= 1024) {
        let f = find(Topology::Flat, n);
        let h = find(Topology::Hierarchical, n);
        let ratio = f.root_msgs_per_gen / h.root_msgs_per_gen.max(1.0);
        if ratio < 8.0 {
            bad.push(format!(
                "N={n}: root msgs {:.0} flat vs {:.0} hier ({ratio:.1}x < 8x)",
                f.root_msgs_per_gen, h.root_msgs_per_gen
            ));
        }
        if h.ckpt_s > f.ckpt_s * 1.10 {
            bad.push(format!(
                "N={n}: hierarchical checkpoint {:.3}s slower than flat {:.3}s",
                h.ckpt_s, f.ckpt_s
            ));
        }
    }
    if !bad.is_empty() {
        eprintln!(
            "FAIL: relay tier must cut root load >= 8x at scale without \
             slowing checkpoints:\n  {}",
            bad.join("\n  ")
        );
        std::process::exit(1);
    }
    println!("\nok: >= 8x root-message reduction at N >= 1024, checkpoint time no worse");
}
