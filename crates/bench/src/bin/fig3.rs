//! Figure 3 — checkpoint/restart times (a) and checkpoint sizes (b) for the
//! 21 common shell-like applications, single node, compression enabled.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin fig3`

use apps::desktop::{launch_desktop, CATALOGUE};
use dmtcp::session::run_for;
use dmtcp::Session;
use dmtcp_bench::{
    desktop_world, kill_and_measure_restart, measure_checkpoints, options, reps, run_parallel,
    stage_breakdown, write_results_jsonl, ExpResult,
};
use oskit::world::NodeId;
use simkit::{Nanos, Summary};

fn main() {
    println!("# Figure 3: common shell-like languages and other applications");
    println!("# single node (8-core desktop), compression enabled\n");
    let jobs: Vec<Box<dyn FnOnce() -> ExpResult + Send>> = CATALOGUE
        .iter()
        .map(|spec| {
            Box::new(move || {
                let (mut w, mut sim) = desktop_world();
                let s = Session::start(&mut w, &mut sim, options(true, false, true));
                launch_desktop(&mut w, &mut sim, Some(&s), NodeId(0), spec, 0xF163);
                run_for(&mut w, &mut sim, Nanos::from_millis(120));
                let (times, size, parts) =
                    measure_checkpoints(&mut w, &mut sim, &s, reps(), Nanos::from_millis(50));
                let restart = kill_and_measure_restart(&mut w, &mut sim, &s);
                ExpResult {
                    label: spec.name.to_string(),
                    ckpt_s: Summary::of(&times),
                    restart_s: Some(restart),
                    image_bytes: size,
                    participants: parts,
                    stages: Some(stage_breakdown(&w, None)),
                }
            }) as Box<dyn FnOnce() -> ExpResult + Send>
        })
        .collect();
    let results = run_parallel(jobs);
    for r in &results {
        println!("{}", r.row());
    }
    match write_results_jsonl("fig3", &results) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
