//! Perceived downtime vs total checkpoint time under forked (two-phase)
//! checkpointing.
//!
//! With the copy-on-write fork pipeline the stop-the-world window ends at
//! the REFILLED barrier — the application resumes while compression and
//! image I/O drain in the background, acknowledged by the `CKPT_WRITTEN`
//! barrier. This bench runs NAS/MG (4 nodes × 2 procs) and RunCMS (desktop)
//! in both modes and reports, per checkpoint:
//!
//! * *perceived* — request → REFILLED release (what the application feels);
//! * *total*     — request → CKPT_WRITTEN release (when the generation is
//!   durable and restartable).
//!
//! Acceptance bar (enforced here, tracked by `scripts/bench_gate.sh`): in
//! forked mode the perceived pause must be at least 5× shorter than the
//! total checkpoint time on both workloads.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin downtime`
//! Pass `--smoke` for the single-repetition variant tier-1 runs. Also
//! writes the flat `results/BENCH_ckpt.json` consumed by the CI
//! bench-regression gate.

use apps::nas::{nas_factory, NasKernel};
use dmtcp::coord::GenStat;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Session};
use dmtcp_bench::{cluster_world, desktop_world, merge_flat_json, options, write_jsonl_lines, EV};
use obs::json::JsonWriter;
use oskit::world::{NodeId, OsSim, World};
use simkit::Nanos;
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

struct Row {
    workload: &'static str,
    forked: bool,
    /// Mean request → REFILLED, seconds.
    pause_s: f64,
    /// Mean request → CKPT_WRITTEN, seconds.
    total_s: f64,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.total_s / self.pause_s.max(1e-12)
    }
}

/// Checkpoint `reps` times and average both phase durations. The returned
/// stats always include the `CKPT_WRITTEN` release: in-line writers release
/// it together with REFILLED, forked writers after the background drain.
fn measure(w: &mut World, sim: &mut OsSim, s: &Session, reps: usize, gap: Nanos) -> (f64, f64) {
    let mut pause = 0.0;
    let mut total = 0.0;
    for _ in 0..reps {
        let g = s.checkpoint_and_wait(w, sim, EV).expect_ckpt();
        let g: GenStat = Session::wait_ckpt_written(w, sim, g.gen, EV)
            .expect("no faults armed: drain completes");
        pause += g.total_pause().expect("refilled").as_secs_f64();
        total += g.written_time().expect("written").as_secs_f64();
        run_for(w, sim, gap);
    }
    (pause / reps as f64, total / reps as f64)
}

fn nas_mg(forked: bool, reps: usize) -> Row {
    const NODES: usize = 4;
    let (mut w, mut sim) = cluster_world(NODES);
    let s = Session::start(&mut w, &mut sim, options(true, forked, true));
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..NODES as u32).map(NodeId).collect(),
        procs_per_node: 2,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        nas_factory(NasKernel::Mg, 1_000_000, 1024),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let (pause_s, total_s) = measure(&mut w, &mut sim, &s, reps, Nanos::from_millis(50));
    Row {
        workload: "NAS/MG",
        forked,
        pause_s,
        total_s,
    }
}

fn runcms(forked: bool, reps: usize) -> Row {
    let (mut w, mut sim) = desktop_world();
    let s = Session::start(&mut w, &mut sim, options(true, forked, false));
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    run_for(&mut w, &mut sim, Nanos::from_secs(60));
    let (pause_s, total_s) = measure(&mut w, &mut sim, &s, reps, Nanos::from_secs(1));
    Row {
        workload: "RunCMS",
        forked,
        pause_s,
        total_s,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    println!("# downtime: perceived stop-the-world vs total checkpoint time ({reps} reps)\n");

    let rows = vec![
        nas_mg(false, reps),
        nas_mg(true, reps),
        runcms(false, reps),
        runcms(true, reps),
    ];

    println!("  workload   mode     perceived   total     total/perceived");
    let mut lines = Vec::new();
    for r in &rows {
        println!(
            "  {:<9}  {:<7}  {:>7.3}s  {:>7.3}s   {:>6.1}x",
            r.workload,
            if r.forked { "forked" } else { "inline" },
            r.pause_s,
            r.total_s,
            r.ratio()
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("workload", r.workload)
            .field_str("mode", if r.forked { "forked" } else { "inline" })
            .field_f64("pause_s", r.pause_s)
            .field_f64("total_s", r.total_s)
            .field_f64("ratio", r.ratio())
            .obj_end();
        lines.push(j.into_string());
    }
    match write_jsonl_lines("downtime", lines) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }

    // Flat key/value file for the CI bench-regression gate: one key per
    // line so the shell gate can parse it without a JSON library. Keys
    // ending `_s` gate "lower is better"; `_ratio` gates "higher is
    // better" (see scripts/bench_gate.sh). Merged, not overwritten — the
    // `ckptstore` bench contributes its incremental-speedup keys to the
    // same file.
    let find = |wl: &str, forked: bool| {
        rows.iter()
            .find(|r| r.workload == wl && r.forked == forked)
            .expect("row")
    };
    if let Err(e) = merge_flat_json(
        "results/BENCH_ckpt.json",
        &[
            ("mg_inline_total_s", find("NAS/MG", false).total_s),
            ("mg_forked_pause_s", find("NAS/MG", true).pause_s),
            ("mg_forked_total_s", find("NAS/MG", true).total_s),
            ("mg_forked_ratio", find("NAS/MG", true).ratio()),
            ("cms_inline_total_s", find("RunCMS", false).total_s),
            ("cms_forked_pause_s", find("RunCMS", true).pause_s),
            ("cms_forked_total_s", find("RunCMS", true).total_s),
            ("cms_forked_ratio", find("RunCMS", true).ratio()),
        ],
    ) {
        eprintln!("# BENCH_ckpt.json write failed: {e}");
    } else {
        println!("# merged results/BENCH_ckpt.json");
    }

    // Acceptance bar: the whole point of the forked pipeline.
    let mut bad = Vec::new();
    for r in rows.iter().filter(|r| r.forked) {
        if r.ratio() < 5.0 {
            bad.push(format!(
                "{}: perceived {:.3}s vs total {:.3}s ({:.1}x < 5x)",
                r.workload,
                r.pause_s,
                r.total_s,
                r.ratio()
            ));
        }
    }
    if !bad.is_empty() {
        eprintln!(
            "FAIL: forked mode must shrink perceived downtime >= 5x:\n  {}",
            bad.join("\n  ")
        );
        std::process::exit(1);
    }
    println!("\nok: forked perceived downtime >= 5x below total on all workloads");
}
