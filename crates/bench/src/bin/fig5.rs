//! Figure 5 — checkpoint/restart timing vs. number of ParGeant4 compute
//! processes (16 → 128, four per node), under MPICH2 with compression:
//! (a) checkpoints to node-local disk, (b) to centralized storage (8 nodes
//! over the SAN, the rest via NFS). Also reports the §5.2 post-checkpoint
//! `sync` cost when `--sync` is passed.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin fig5 [--sync]`

use apps::geant::geant_factory;
use dmtcp::session::run_for;
use dmtcp::Session;
use dmtcp_bench::{
    cluster_world, kill_and_measure_restart, measure_checkpoints, options, reps, run_parallel,
    stage_breakdown, write_results_jsonl, ExpResult,
};
use oskit::world::NodeId;
use simkit::{Nanos, Summary};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

fn run_point(nodes: usize, local_disk: bool, want_sync: bool) -> (ExpResult, Option<f64>) {
    let (mut w, mut sim) = cluster_world(nodes);
    let s = Session::start(&mut w, &mut sim, options(true, false, local_disk));
    let job = MpiJob {
        flavor: Flavor::Mpich2,
        nodes: (0..nodes as u32).map(NodeId).collect(),
        procs_per_node: 4,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        geant_factory(u32::MAX, 2_000_000),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let (times, size, parts) =
        measure_checkpoints(&mut w, &mut sim, &s, reps(), Nanos::from_millis(100));
    // Optional sync cost: how much longer until all dirty image bytes are
    // on the platter (local-disk runs only; the paper reports +0.79 s).
    let sync_cost = if want_sync && local_disk {
        let now = sim.now();
        let worst = (0..nodes)
            .map(|n| w.nodes[n].disk.sync(now))
            .max()
            .expect("nodes exist");
        Some((worst - now).as_secs_f64())
    } else {
        None
    };
    let restart = kill_and_measure_restart(&mut w, &mut sim, &s);
    (
        ExpResult {
            label: format!("{:>3} procs", nodes * 4),
            ckpt_s: Summary::of(&times),
            restart_s: Some(restart),
            image_bytes: size,
            participants: parts,
            stages: Some(stage_breakdown(&w, None)),
        },
        sync_cost,
    )
}

fn main() {
    let want_sync = std::env::args().any(|a| a == "--sync");
    println!("# Figure 5: ParGeant4 under MPICH2, compression enabled");
    println!("# (compute processes = 4 per node; MPD daemons + console also checkpointed)\n");
    let mut all = Vec::new();
    for (title, local) in [
        ("(a) checkpoints to local disk of each node", true),
        (
            "(b) checkpoints to centralized storage (SAN x8 nodes, NFS rest)",
            false,
        ),
    ] {
        println!("== {title} ==");
        let points: Vec<usize> = vec![4, 8, 12, 16, 20, 24, 28, 32];
        type PointJob = Box<dyn FnOnce() -> (ExpResult, Option<f64>) + Send>;
        let jobs: Vec<PointJob> = points
            .iter()
            .map(|&n| Box::new(move || run_point(n, local, want_sync)) as PointJob)
            .collect();
        for (mut r, sync) in run_parallel(jobs) {
            r.label = format!("{} [{}]", r.label, if local { "local" } else { "central" });
            match sync {
                Some(s) => println!("{}   +sync {:.2}s", r.row(), s),
                None => println!("{}", r.row()),
            }
            all.push(r);
        }
        println!();
    }
    match write_results_jsonl("fig5", &all) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
