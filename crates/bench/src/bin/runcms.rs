//! RunCMS (§5.1 narrative numbers): the CMS software checkpoints in 25.2 s
//! and restarts in 18.4 s; the 680 MB in-memory image (540 dynamic
//! libraries) gzips to 225 MB on disk.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin runcms`

use dmtcp::session::run_for;
use dmtcp::Session;
use dmtcp_bench::{
    desktop_world, kill_and_measure_restart, measure_checkpoints, options, write_jsonl_lines,
};
use obs::json::JsonWriter;
use oskit::world::NodeId;
use simkit::Nanos;

fn main() {
    println!("# RunCMS: 680 MB image, 540 dynamic libraries (desktop, gzip on)\n");
    let (mut w, mut sim) = desktop_world();
    let s = Session::start(&mut w, &mut sim, options(true, false, false));
    let pid = s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    // Let initialization (library loading + conditions DB) complete.
    run_for(&mut w, &mut sim, Nanos::from_secs(60));
    let libs = w
        .proc_maps(pid)
        .map(|m| m.matches(".so").count())
        .unwrap_or(0);
    let raw = w.procs[&pid].mem.total_bytes();
    let (times, size, _) = measure_checkpoints(&mut w, &mut sim, &s, 1, Nanos::from_millis(100));
    let restart = kill_and_measure_restart(&mut w, &mut sim, &s);
    println!("dynamic libraries mapped : {libs}");
    println!(
        "in-memory image          : {:.0} MB",
        raw as f64 / (1 << 20) as f64
    );
    println!(
        "checkpoint time          : {:.1} s   (paper: 25.2 s)",
        times[0]
    );
    println!("restart time             : {restart:.1} s   (paper: 18.4 s)");
    println!(
        "gzip'd image on disk     : {:.0} MB  (paper: 225 MB)",
        size as f64 / (1 << 20) as f64
    );
    let mut j = JsonWriter::new();
    j.obj_begin()
        .field_str("label", "runCMS")
        .field_u64("libraries", libs as u64)
        .field_u64("raw_bytes", raw)
        .field_f64("ckpt_s", times[0])
        .field_f64("restart_s", restart)
        .field_u64("image_bytes", size)
        .obj_end();
    match write_jsonl_lines("runcms", [j.into_string()]) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
