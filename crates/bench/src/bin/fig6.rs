//! Figure 6 — checkpoint/restart time as total memory grows: a synthetic
//! OpenMPI program allocating random data on 32 nodes, compression
//! disabled, checkpoints to local disk.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin fig6`

use apps::memhog::memhog_factory;
use dmtcp::session::run_for;
use dmtcp::Session;
use dmtcp_bench::{
    cluster_world, kill_and_measure_restart, measure_checkpoints, options, run_parallel,
    stage_breakdown, write_results_jsonl, ExpResult,
};
use oskit::world::NodeId;
use simkit::{Nanos, Summary};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const NODES: usize = 32;
const PPN: usize = 4;

fn run_point(total_gb: u64) -> ExpResult {
    let (mut w, mut sim) = cluster_world(NODES);
    let s = Session::start(&mut w, &mut sim, options(false, false, true));
    let ranks = (NODES * PPN) as u64;
    let mb_per_rank = total_gb * 1024 / ranks;
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..NODES as u32).map(NodeId).collect(),
        procs_per_node: PPN,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        memhog_factory(mb_per_rank),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let (times, size, parts) = measure_checkpoints(&mut w, &mut sim, &s, 1, Nanos::from_millis(50));
    let restart = kill_and_measure_restart(&mut w, &mut sim, &s);
    ExpResult {
        label: format!("{total_gb:>3} GB total"),
        ckpt_s: Summary::of(&times),
        restart_s: Some(restart),
        image_bytes: size,
        participants: parts,
        stages: Some(stage_breakdown(&w, None)),
    }
}

fn main() {
    println!("# Figure 6: timing as memory usage grows");
    println!("# synthetic OpenMPI program, random data, 32 nodes, no compression, local disk\n");
    let points: Vec<u64> = vec![2, 8, 16, 24, 32, 48, 64, 70];
    let jobs: Vec<Box<dyn FnOnce() -> ExpResult + Send>> = points
        .iter()
        .map(|&gb| Box::new(move || run_point(gb)) as Box<dyn FnOnce() -> ExpResult + Send>)
        .collect();
    let results = run_parallel(jobs);
    for r in &results {
        println!("{}", r.row());
    }
    match write_results_jsonl("fig6", &results) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
