//! Figure 4 — distributed applications on 32 nodes / 128 cores:
//! (a) checkpoint timings, (b) restart timings, (c) aggregate checkpoint
//! sizes, each with and without compression.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin fig4`
//! (set `DMTCP_REPS` to change the repetition count; the paper uses 10)

use apps::geant::geant_factory;
use apps::ipython::launch_demo;
use apps::nas::{baseline_factory, nas_factory, NasKernel};
use dmtcp::session::run_for;
use dmtcp::Session;
use dmtcp_bench::{
    cluster_world, kill_and_measure_restart, measure_checkpoints, options, reps, run_parallel,
    stage_breakdown, write_results_jsonl, ExpResult,
};
use oskit::world::NodeId;
use simkit::{Nanos, Summary};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob, RankFactory};

const NODES: usize = 32;
const PPN: usize = 4;

#[derive(Clone, Copy)]
enum Workload {
    IpyShell,
    IpyDemo,
    Mpi(Flavor, MpiApp, usize /* nodes */),
}

#[derive(Clone, Copy)]
enum MpiApp {
    Baseline,
    ParGeant4,
    Nas(NasKernel),
}

fn factory(app: MpiApp) -> RankFactory {
    match app {
        MpiApp::Baseline => baseline_factory(0),
        MpiApp::ParGeant4 => geant_factory(u32::MAX, 2_000_000),
        // Long-running instances: iteration counts far beyond the
        // measurement window; the harness kills the job afterwards. CG gets
        // a larger system so it cannot converge inside the window.
        MpiApp::Nas(NasKernel::Cg) => nas_factory(NasKernel::Cg, 1_000_000, 4096),
        MpiApp::Nas(k) => nas_factory(k, 1_000_000, 1024),
    }
}

fn run_one(label: &str, wl: Workload, compression: bool) -> ExpResult {
    let nodes_for = match wl {
        Workload::Mpi(_, _, n) => n,
        _ => NODES,
    };
    let (mut w, mut sim) = cluster_world(NODES.max(nodes_for));
    let s = Session::start(&mut w, &mut sim, options(compression, false, true));
    match wl {
        Workload::IpyShell => {
            s.launch(
                &mut w,
                &mut sim,
                NodeId(0),
                "ipython",
                Box::new(apps::ipython::IPyShell {
                    pc: 0,
                    raw_mb: 30,
                    ticks: 0,
                }),
            );
        }
        Workload::IpyDemo => {
            let nodes: Vec<NodeId> = (0..NODES as u32).map(NodeId).collect();
            launch_demo(&mut w, &mut sim, Some(&s), &nodes, u32::MAX);
        }
        Workload::Mpi(flavor, app, n) => {
            let job = MpiJob {
                flavor,
                nodes: (0..n as u32).map(NodeId).collect(),
                procs_per_node: PPN,
                base_port: 30_000,
            };
            mpirun(&mut w, &mut sim, Launcher::Dmtcp(&s), &job, factory(app));
        }
    }
    // Let the job wire up and reach steady state.
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let (times, size, parts) =
        measure_checkpoints(&mut w, &mut sim, &s, reps(), Nanos::from_millis(100));
    let restart = kill_and_measure_restart(&mut w, &mut sim, &s);
    ExpResult {
        label: label.to_string(),
        ckpt_s: Summary::of(&times),
        restart_s: Some(restart),
        image_bytes: size,
        participants: parts,
        stages: Some(stage_breakdown(&w, None)),
    }
}

fn main() {
    println!("# Figure 4: distributed applications, 32 nodes / 128 cores");
    println!("# [1] sockets directly  [2] MPICH2  [3] OpenMPI");
    println!("# SP and BT use 36 processes (square requirement): 9 nodes x 4\n");
    let configs: Vec<(&str, Workload)> = vec![
        ("iPython/Shell[1]", Workload::IpyShell),
        ("iPython/Demo[1]", Workload::IpyDemo),
        (
            "Baseline[2]",
            Workload::Mpi(Flavor::Mpich2, MpiApp::Baseline, NODES),
        ),
        (
            "ParGeant4[2]",
            Workload::Mpi(Flavor::Mpich2, MpiApp::ParGeant4, NODES),
        ),
        (
            "NAS/CG[2] (32p)",
            Workload::Mpi(Flavor::Mpich2, MpiApp::Nas(NasKernel::Cg), 8),
        ),
        (
            "Baseline[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Baseline, NODES),
        ),
        (
            "NAS/EP[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Nas(NasKernel::Ep), NODES),
        ),
        (
            "NAS/LU[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Nas(NasKernel::Lu), NODES),
        ),
        (
            "NAS/SP[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Nas(NasKernel::Sp), 9),
        ),
        (
            "NAS/MG[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Nas(NasKernel::Mg), NODES),
        ),
        (
            "NAS/IS[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Nas(NasKernel::Is), NODES),
        ),
        (
            "NAS/BT[3]",
            Workload::Mpi(Flavor::OpenMpi, MpiApp::Nas(NasKernel::Bt), 9),
        ),
    ];
    let only: Option<usize> = std::env::var("DMTCP_FIG4_ONLY")
        .ok()
        .and_then(|v| v.parse().ok());
    let mode: Option<usize> = std::env::var("DMTCP_FIG4_MODE")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut all = Vec::new();
    for compression in [false, true] {
        if let Some(m) = mode {
            if (m == 1) != compression {
                continue;
            }
        }
        println!(
            "\n== {} ==",
            if compression {
                "compressed (gzip)"
            } else {
                "uncompressed"
            }
        );
        let jobs: Vec<Box<dyn FnOnce() -> ExpResult + Send>> = configs
            .iter()
            .enumerate()
            .filter(|(i, _)| only.is_none() || only == Some(*i))
            .map(|(_, &(label, wl))| {
                Box::new(move || run_one(label, wl, compression))
                    as Box<dyn FnOnce() -> ExpResult + Send>
            })
            .collect();
        let mut results = run_parallel(jobs);
        for r in &mut results {
            r.label = format!("{} [{}]", r.label, if compression { "gz" } else { "raw" });
            println!("{}", r.row());
        }
        all.extend(results);
    }
    match write_results_jsonl("fig4", &all) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
