//! Live migration vs full checkpoint-restart.
//!
//! The workload is an 8-rank NAS/CG job (2 nodes × 2 ranks under simulated
//! OpenMPI, with its OpenRTE daemons) plus one standalone RunCMS process —
//! the migratable subset. Two ways to move RunCMS to another node:
//!
//! * *live migration* — [`RestartPlan::migrate`] checkpoints the session,
//!   kills only RunCMS and restores it on the target node while the MPI
//!   job keeps computing. The reported pause is the mover's downtime:
//!   migrate-plan arrival → restart-refill barrier.
//! * *full cycle* — checkpoint, kill **everything**, and restart the whole
//!   generation onto a different (packed, 2-node) topology: the classic
//!   stop-the-world reschedule. Total is checkpoint request → the restart's
//!   refill barrier.
//!
//! Acceptance bar (enforced here, tracked by `scripts/bench_gate.sh`): the
//! subset migration pause must be at least 3× shorter than the full
//! checkpoint-restart cycle.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin migrate`
//! Pass `--smoke` for the single-repetition variant tier-1 runs. Also
//! writes the flat `results/BENCH_migrate.json` consumed by the CI
//! bench-regression gate.

use apps::nas::{nas_factory, NasKernel};
use dmtcp::hijack::Hijack;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Packing, RestartPlan, Session};
use dmtcp_bench::{cluster_world, merge_flat_json, options, write_jsonl_lines, EV};
use obs::json::JsonWriter;
use oskit::world::{NodeId, OsSim, World};
use simkit::Nanos;
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const NODES: usize = 3;

/// The shared workload: CG on nodes 0–1, RunCMS alone on node 1.
fn workload() -> (World, OsSim, Session) {
    let (mut w, mut sim) = cluster_world(NODES);
    let s = Session::start(&mut w, &mut sim, options(true, false, false));
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: vec![NodeId(0), NodeId(1)],
        procs_per_node: 2,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        nas_factory(NasKernel::Cg, 1_000_000, 1024),
    );
    s.launch(
        &mut w,
        &mut sim,
        NodeId(1),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    (w, sim, s)
}

/// Virtual pid and current node of the RunCMS mover.
fn mover(w: &World) -> (u32, NodeId) {
    w.procs
        .values()
        .find(|p| p.alive() && p.cmd == "runCMS")
        .and_then(|p| {
            let h = p.ext.as_ref()?.downcast_ref::<Hijack>()?;
            Some((h.vpid, p.node))
        })
        .expect("runCMS is a live traced process")
}

/// Mean mover downtime across `reps` live migrations (node 1 ↔ node 2).
fn measure_migrate(reps: usize) -> f64 {
    let (mut w, mut sim, s) = workload();
    let mut pause = 0.0;
    for _ in 0..reps {
        let (vpid, node) = mover(&w);
        let target = if node == NodeId(2) {
            NodeId(1)
        } else {
            NodeId(2)
        };
        let report = RestartPlan::builder()
            .only_pids([vpid])
            .topology([target])
            .build()
            .migrate(&s, &mut w, &mut sim, EV)
            .expect("live migration");
        pause += report.pause.as_secs_f64();
        run_for(&mut w, &mut sim, Nanos::from_millis(50));
    }
    pause / reps as f64
}

/// Mean time for `reps` full stop-the-world reschedules: checkpoint, kill
/// everything, restart the generation packed onto a 2-node topology.
fn measure_full_cycle(reps: usize) -> f64 {
    let (mut w, mut sim, s) = workload();
    let mut total = 0.0;
    for _ in 0..reps {
        let t0 = sim.now();
        let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
        Session::wait_ckpt_written(&mut w, &mut sim, g.gen, EV).expect("generation committed");
        s.kill_computation(&mut w, &mut sim);
        RestartPlan::builder()
            .generation(g.gen)
            .topology([NodeId(0), NodeId(1)])
            .pack(Packing::Fill)
            .build()
            .execute(&s, &mut w, &mut sim)
            .expect("heterogeneous restart");
        Session::wait_restart_done(&mut w, &mut sim, g.gen, EV);
        total += (sim.now() - t0).as_secs_f64();
        run_for(&mut w, &mut sim, Nanos::from_millis(50));
    }
    total / reps as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 1 } else { 3 };
    println!("# migrate: subset live migration vs full checkpoint-restart ({reps} reps)\n");

    let migrate_pause_s = measure_migrate(reps);
    let restart_hetero_total_s = measure_full_cycle(reps);
    let ratio = restart_hetero_total_s / migrate_pause_s.max(1e-12);

    println!("  strategy                       downtime");
    println!("  live migration (1 process)    {migrate_pause_s:>8.3}s   (mover only; MPI job never stops)");
    println!("  full checkpoint-restart cycle {restart_hetero_total_s:>8.3}s   (everything down, repacked 3->2 nodes)");
    println!("  full/migrate ratio            {ratio:>8.1}x");

    let mut j = JsonWriter::new();
    j.obj_begin()
        .field_str("workload", "NAS/CG + RunCMS")
        .field_f64("migrate_pause_s", migrate_pause_s)
        .field_f64("restart_hetero_total_s", restart_hetero_total_s)
        .field_f64("migrate_speedup_ratio", ratio)
        .obj_end();
    match write_jsonl_lines("migrate", vec![j.into_string()]) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }

    // Flat keys for the CI bench-regression gate: `*_s` gate lower-is-
    // better, `*_ratio` higher-is-better (see scripts/bench_gate.sh).
    if let Err(e) = merge_flat_json(
        "results/BENCH_migrate.json",
        &[
            ("migrate_pause_s", migrate_pause_s),
            ("restart_hetero_total_s", restart_hetero_total_s),
            ("migrate_speedup_ratio", ratio),
        ],
    ) {
        eprintln!("# BENCH_migrate.json write failed: {e}");
    } else {
        println!("# merged results/BENCH_migrate.json");
    }

    // Acceptance bar: migrating the subset must beat rescheduling the world.
    if ratio < 3.0 {
        eprintln!(
            "FAIL: migration pause {migrate_pause_s:.3}s must be >= 3x below the \
             full cycle {restart_hetero_total_s:.3}s ({ratio:.1}x < 3x)"
        );
        std::process::exit(1);
    }
    println!("\nok: subset migration pause >= 3x below the full checkpoint-restart cycle");
}
