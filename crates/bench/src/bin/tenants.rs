//! Multi-tenant service throughput: one shared coordinator vs a sharded
//! `dmtcpd` under Poisson checkpoint storms.
//!
//! The paper's coordinator serves one computation; dmtcpd multiplexes many.
//! This bench opens 64 tenant sessions of 8 processes each against two
//! deployments of the same daemon — a single shared shard (every session's
//! barrier traffic funnels through one coordinator, so every generation is
//! a 512-process stop-the-world) and an 8-way sharded daemon (each shard
//! checkpoints only its own 64 processes, eight generations in flight at
//! once). Each session fires checkpoint requests as an independent Poisson
//! process (deterministic exponential inter-arrivals, one xoshiro stream
//! per session), so request storms overlap and coalesce exactly as a busy
//! service would see them.
//!
//! Reported per deployment: completed generations per second aggregated
//! over all shard coordinators (`agg_ckpts_per_sec`), and the p99 perceived
//! pause — suspend-barrier release to refill-barrier release, weighted by
//! participants, since that is the stop-the-world window every process in
//! the generation sits through.
//!
//! Acceptance bar (enforced here, tracked by `scripts/bench_gate.sh`): the
//! sharded daemon must sustain at least 3x the shared coordinator's
//! aggregate checkpoint rate without worsening the p99 perceived pause.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin tenants`
//! Pass `--smoke` for the shorter-storm variant tier-1 runs. Also writes
//! the flat `results/BENCH_tenants.json` consumed by the CI
//! bench-regression gate.

use dmtcp::coord::{coord_shared_for, stage, GenStat};
use dmtcp::session::run_for;
use dmtcp_bench::{cluster_world, write_jsonl_lines};
use obs::json::JsonWriter;
use oskit::program::{Program, Step};
use oskit::world::NodeId;
use oskit::Kernel;
use simkit::rng::{mix2, DetRng};
use simkit::{Nanos, Snap, Summary};
use svc::{shard_root_port, DaemonConfig, Dmtcpd};

const NODES: usize = 32;
const SESSIONS: u64 = 64;
const PROCS_PER_SESSION: usize = 8;
/// Ballast per process: enough that image writes are real work, small
/// enough that barrier traffic — not I/O — sets the pace.
const BALLAST: u64 = 128 << 10;
/// Mean inter-arrival of one session's checkpoint requests, seconds.
const MEAN_GAP_S: f64 = 1.0;
/// Extra settle time after the storm window so in-flight generations
/// complete before we read the stats.
const SETTLE_S: f64 = 3.0;

/// A tenant process: allocates its ballast once, then sleeps in a loop —
/// the per-process cost floor, so the sweep isolates service behavior.
struct Tenant {
    pc: u8,
}
simkit::impl_snap!(struct Tenant { pc });
impl Program for Tenant {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            k.mmap_synthetic(
                "ballast",
                BALLAST,
                0x7e4a47,
                oskit::mem::FillProfile::Random,
            );
            self.pc = 1;
        }
        Step::Sleep(Nanos::from_millis(10))
    }
    fn tag(&self) -> &'static str {
        "tenant-sleeper"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

struct Row {
    shards: u16,
    completed: usize,
    window_s: f64,
    agg_rate: f64,
    pause: Summary,
}

/// Perceived pause of one generation: suspend release to refill release —
/// the window every participant spends stopped.
fn pause_s(g: &GenStat) -> Option<f64> {
    let s = g.releases.get(&stage::SUSPENDED)?;
    let r = g.releases.get(&stage::REFILLED)?;
    Some((*r - *s).as_secs_f64())
}

fn run_point(shards: u16, window_s: f64) -> Row {
    let (mut w, mut sim) = cluster_world(NODES);
    let d = Dmtcpd::start(
        &mut w,
        &mut sim,
        DaemonConfig {
            shards,
            ..DaemonConfig::default()
        },
    );
    let mut clients = Vec::new();
    for s in 0..SESSIONS {
        let c = d
            .open(
                &mut w,
                &mut sim,
                &format!("tenant{s}"),
                PROCS_PER_SESSION as u32,
            )
            .expect("under the admission ceiling");
        for p in 0..PROCS_PER_SESSION {
            let node = 1 + ((s as usize * PROCS_PER_SESSION + p) % (NODES - 1));
            c.launch(
                &mut w,
                &mut sim,
                NodeId(node as u32),
                "tenant",
                Box::new(Tenant { pc: 0 }),
            );
        }
        clients.push(c);
    }
    // Let every manager connect and register before the storm opens.
    run_for(&mut w, &mut sim, Nanos::from_millis(200));
    let t0 = sim.now();

    // Draw every session's Poisson arrivals for the window up front, then
    // fire them in global time order.
    let mut arrivals: Vec<(Nanos, usize)> = Vec::new();
    for (i, _) in clients.iter().enumerate() {
        let mut rng = DetRng::seed_from_u64(mix2(0x7e4a475, i as u64));
        let mut t = 0.0;
        loop {
            t += -MEAN_GAP_S * (1.0 - rng.unit_f64()).ln();
            if t >= window_s {
                break;
            }
            arrivals.push((t0 + Nanos::from_secs_f64(t), i));
        }
    }
    arrivals.sort();
    let requests = arrivals.len();
    for (at, i) in arrivals {
        sim.run_until(&mut w, at);
        clients[i].request_checkpoint(&mut w, &mut sim);
    }
    let t_end = t0 + Nanos::from_secs_f64(window_s);
    sim.run_until(&mut w, t_end);
    run_for(&mut w, &mut sim, Nanos::from_secs_f64(SETTLE_S));

    // Completed generations across every shard whose refill barrier
    // released inside the window; pause samples weighted by participants.
    let mut completed = 0;
    let mut pauses = Vec::new();
    for shard in 0..shards {
        let port = shard_root_port(&d.cfg, shard);
        for g in coord_shared_for(&mut w, port).gen_stats.clone() {
            if g.aborted {
                continue;
            }
            let Some(p) = pause_s(&g) else { continue };
            let Some(&refilled) = g.releases.get(&stage::REFILLED) else {
                continue;
            };
            if refilled <= t0 || refilled > t_end {
                continue;
            }
            completed += 1;
            pauses.extend(std::iter::repeat_n(p, g.participants as usize));
        }
    }
    assert!(
        completed > 0,
        "{shards}-shard run completed no generations out of {requests} requests"
    );
    Row {
        shards,
        completed,
        window_s,
        agg_rate: completed as f64 / window_s,
        pause: Summary::of(&pauses),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let window_s = if smoke { 2.0 } else { 10.0 };
    println!("# tenants: shared coordinator vs sharded dmtcpd under Poisson storms");
    println!(
        "# {SESSIONS} sessions x {PROCS_PER_SESSION} procs, {BALLAST}-byte ballast, \
         mean request gap {MEAN_GAP_S}s, {window_s}s storm window\n"
    );

    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = [1u16, 8]
        .into_iter()
        .map(|shards| {
            Box::new(move || run_point(shards, window_s)) as Box<dyn FnOnce() -> Row + Send>
        })
        .collect();
    let rows = dmtcp_bench::run_parallel(jobs);
    let (shared, sharded) = (&rows[0], &rows[1]);

    println!("  shards   completed   agg ckpts/s   p50 pause   p99 pause");
    let mut lines = Vec::new();
    for r in &rows {
        println!(
            "  {:>6}   {:>9}   {:>11.2}   {:>8.3}s   {:>8.3}s",
            r.shards, r.completed, r.agg_rate, r.pause.p50, r.pause.p99
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_u64("shards", r.shards as u64)
            .field_u64("sessions", SESSIONS)
            .field_u64("procs_per_session", PROCS_PER_SESSION as u64)
            .field_f64("window_s", r.window_s)
            .field_u64("completed_gens", r.completed as u64)
            .field_f64("agg_ckpts_per_sec", r.agg_rate)
            .field_f64("p50_pause_s", r.pause.p50)
            .field_f64("p99_pause_s", r.pause.p99)
            .obj_end();
        lines.push(j.into_string());
    }
    match write_jsonl_lines("tenants", lines) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }

    // Flat key/value file for the CI bench-regression gate: `_per_sec` and
    // `_ratio` keys gate "higher is better", `_s` keys "lower is better"
    // (see scripts/bench_gate.sh).
    let speedup = sharded.agg_rate / shared.agg_rate.max(f64::MIN_POSITIVE);
    if let Err(e) = dmtcp_bench::merge_flat_json(
        "results/BENCH_tenants.json",
        &[
            ("agg_ckpts_per_sec", sharded.agg_rate),
            ("tenants_p99_pause_s", sharded.pause.p99),
            ("tenants_shared_ckpts_per_sec", shared.agg_rate),
            ("tenants_shared_p99_pause_s", shared.pause.p99),
            ("tenants_speedup_ratio", speedup),
        ],
    ) {
        eprintln!("# BENCH_tenants.json write failed: {e}");
    } else {
        println!("# wrote results/BENCH_tenants.json");
    }

    // Acceptance bar: the whole point of sharding the service.
    let mut bad = Vec::new();
    if speedup < 3.0 {
        bad.push(format!(
            "aggregate rate {:.2}/s sharded vs {:.2}/s shared ({speedup:.1}x < 3x)",
            sharded.agg_rate, shared.agg_rate
        ));
    }
    if sharded.pause.p99 > shared.pause.p99 * 1.10 {
        bad.push(format!(
            "sharded p99 pause {:.3}s worse than shared {:.3}s",
            sharded.pause.p99, shared.pause.p99
        ));
    }
    if !bad.is_empty() {
        eprintln!(
            "FAIL: sharded dmtcpd must sustain >= 3x aggregate checkpoint rate \
             at no worse p99 pause:\n  {}",
            bad.join("\n  ")
        );
        std::process::exit(1);
    }
    println!(
        "\nok: {speedup:.1}x aggregate checkpoint rate at p99 pause {:.3}s (shared {:.3}s)",
        sharded.pause.p99, shared.pause.p99
    );
}
