//! Raw event-loop throughput: the timer-wheel engine vs the reference heap.
//!
//! Everything this repo measures rides on `simkit`'s event queue, so its
//! events-per-second is the hard ceiling on every sweep (ROADMAP item 5:
//! `bench/scale` topped out at N=2048 with the `BinaryHeap` engine). This
//! bench runs three queue-shaped workloads through *both* engines in one
//! process and reports wall-clock events/sec:
//!
//! * `timer` — pure-timer churn: 2^20 pending keyed timers (the N=16384
//!   sweep's worst case: tens of timers per process), each fire re-arming
//!   at a pseudorandom horizon (⅞ sub-262 µs, ⅛ milliseconds). Zero
//!   allocation per event; isolates queue mechanics. At this population
//!   the heap pays ~20 cache-missing sift levels per operation while the
//!   wheel stays O(1). This is the workload the ISSUE-9 acceptance bar
//!   applies to: the wheel must beat the heap ≥ 5×, asserted below.
//! * `ring` — 1024 token rings passing boxed-closure messages with
//!   microsecond hop latencies; the allocation-heavy message-passing shape.
//! * `mixed` — fault-matrix-shaped: per-"process" 1 µs quantum re-arms
//!   (keyed) plus periodic same-instant barrier storms (boxed `soon`) and
//!   seconds-away checkpoint timers crossing into the overflow tier.
//!
//! Each workload folds `(now, key)` of every delivery into a running hash;
//! the wheel and heap hashes must match exactly, so the speedup numbers are
//! only ever produced by order-identical executions.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin sim`
//! Pass `--smoke` for the fast variant tier-1 runs. Writes
//! `results/sim.jsonl` and the flat `results/BENCH_sim.json` consumed by
//! the CI bench-regression gate (`_per_sec` and `_ratio` keys gate
//! "higher is better").

use dmtcp_bench::write_jsonl_lines;
use obs::json::JsonWriter;
use simkit::{mix2, splitmix64, Nanos, RunOutcome, Sim};

/// The world is just a running hash of every delivery.
type W = u64;

const TIMER_POP: u64 = 1 << 20;
const RINGS: u64 = 1_024;
const PROCS: u64 = 4_096;

// ---------------------------------------------------------------------
// Workload event bodies. Behaviour derives only from (key, now), so both
// engines replay the identical schedule as long as delivery order matches
// — which the hash check proves.
// ---------------------------------------------------------------------

fn timer_fire(w: &mut W, sim: &mut Sim<W>, key: u64) {
    *w = mix2(*w ^ sim.now().0, key);
    let mut s = key ^ sim.now().0;
    let r = splitmix64(&mut s);
    let delta = if r.is_multiple_of(8) {
        1_000_000 + r % 49_000_000 // occasional millisecond-scale sleep
    } else {
        1_024 + r % 261_120 // level-0 horizon churn
    };
    sim.at_keyed(sim.now() + Nanos(delta), splitmix64(&mut s), timer_fire);
}

fn timer_setup(sim: &mut Sim<W>) {
    let mut s = 0xC0FFEE;
    for _ in 0..TIMER_POP {
        let key = splitmix64(&mut s);
        sim.at_keyed(Nanos(1 + key % 262_144), key, timer_fire);
    }
}

fn ring_hop(w: &mut W, sim: &mut Sim<W>, ring: u64, n: u64) {
    *w = mix2(*w ^ sim.now().0, ring ^ n);
    let mut s = ring.wrapping_mul(0x2545F491) ^ n;
    let delta = 500 + splitmix64(&mut s) % 20_000; // 0.5–20 µs hops
    sim.after(Nanos(delta), move |w: &mut W, sim| {
        ring_hop(w, sim, ring, n + 1)
    });
}

fn ring_setup(sim: &mut Sim<W>) {
    for ring in 0..RINGS {
        sim.at(Nanos(1 + ring), move |w: &mut W, sim| {
            ring_hop(w, sim, ring, 0)
        });
    }
}

fn quantum(w: &mut W, sim: &mut Sim<W>, key: u64) {
    *w = mix2(*w ^ sim.now().0, key);
    let pid = key >> 32;
    let count = key & 0xFFFF_FFFF;
    if count.is_multiple_of(509) {
        // Barrier release: a same-instant storm of boxed events.
        for i in 0..8u64 {
            sim.soon(move |w: &mut W, sim| *w = mix2(*w ^ sim.now().0, i));
        }
    }
    if count.is_multiple_of(4_093) {
        // Checkpoint-interval timer, seconds away — overflow-tier traffic.
        sim.at(sim.now() + Nanos(2_000_000_000), move |w: &mut W, sim| {
            *w = mix2(*w ^ sim.now().0, pid)
        });
    }
    sim.at_keyed(sim.now() + Nanos(1_000), (pid << 32) | (count + 1), quantum);
}

fn mixed_setup(sim: &mut Sim<W>) {
    for pid in 0..PROCS {
        sim.at_keyed(Nanos(1 + pid % 1_000), pid << 32, quantum);
    }
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

struct Meas {
    events: u64,
    secs: f64,
    hash: u64,
}

fn run_once(mk: fn() -> Sim<W>, setup: fn(&mut Sim<W>), events: u64) -> Meas {
    let mut sim = mk();
    let mut w: W = 0x9E37_79B9_7F4A_7C15;
    setup(&mut sim);
    let t0 = std::time::Instant::now();
    let out = sim.run_budgeted(&mut w, events);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        out,
        RunOutcome::BudgetExhausted,
        "self-sustaining workload drained early"
    );
    Meas {
        events: sim.events_fired(),
        secs,
        hash: mix2(w, sim.now().0),
    }
}

/// Best-of-`reps` wall clock; the delivery hash must be identical across
/// reps (and later across engines) or the measurement is meaningless.
fn run_workload(mk: fn() -> Sim<W>, setup: fn(&mut Sim<W>), events: u64, reps: usize) -> Meas {
    let mut best = run_once(mk, setup, events);
    for _ in 1..reps {
        let m = run_once(mk, setup, events);
        assert_eq!(m.hash, best.hash, "non-deterministic workload");
        if m.secs < best.secs {
            best = m;
        }
    }
    best
}

struct Ab {
    name: &'static str,
    wheel: Meas,
    heap: Meas,
}

impl Ab {
    fn wheel_eps(&self) -> f64 {
        self.wheel.events as f64 / self.wheel.secs
    }
    fn heap_eps(&self) -> f64 {
        self.heap.events as f64 / self.heap.secs
    }
    fn speedup(&self) -> f64 {
        self.wheel_eps() / self.heap_eps()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let events: u64 = if smoke { 1_200_000 } else { 8_000_000 };
    let reps = if smoke { 2 } else { dmtcp_bench::reps().max(3) };
    println!("# sim: event-loop throughput, timer wheel vs reference heap");
    println!("# {events} events per run, best of {reps} reps per engine\n");

    type Setup = fn(&mut Sim<W>);
    let workloads: [(&'static str, Setup); 3] = [
        ("timer", timer_setup),
        ("ring", ring_setup),
        ("mixed", mixed_setup),
    ];

    let mut results = Vec::new();
    for (name, setup) in workloads {
        let wheel = run_workload(Sim::new_wheel, setup, events, reps);
        let heap = run_workload(Sim::new_reference, setup, events, reps);
        assert_eq!(
            wheel.hash, heap.hash,
            "{name}: wheel and heap fired different schedules"
        );
        results.push(Ab { name, wheel, heap });
    }

    println!("  workload       wheel ev/s        heap ev/s    speedup");
    let mut lines = Vec::new();
    for ab in &results {
        println!(
            "  {:<8}  {:>13.0}    {:>13.0}    {:>6.2}x",
            ab.name,
            ab.wheel_eps(),
            ab.heap_eps(),
            ab.speedup()
        );
        for (engine, m, eps) in [
            ("wheel", &ab.wheel, ab.wheel_eps()),
            ("heap", &ab.heap, ab.heap_eps()),
        ] {
            let mut j = JsonWriter::new();
            j.obj_begin()
                .field_str("workload", ab.name)
                .field_str("engine", engine)
                .field_u64("events", m.events)
                .field_f64("secs", m.secs)
                .field_f64("events_per_sec", eps)
                .obj_end();
            lines.push(j.into_string());
        }
    }
    match write_jsonl_lines("sim", lines) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }

    // Flat key/value file for the CI bench-regression gate. `_per_sec` and
    // `_ratio` keys gate "higher is better" (see scripts/bench_gate.sh).
    let mut out = String::from("{\n");
    for ab in &results {
        out.push_str(&format!(
            "  \"sim_{}_events_per_sec\": {:.6},\n",
            ab.name,
            ab.wheel_eps()
        ));
        out.push_str(&format!(
            "  \"sim_{}_speedup_ratio\": {:.6},\n",
            ab.name,
            ab.speedup()
        ));
    }
    out.truncate(out.len() - 2); // drop trailing ",\n"
    out.push_str("\n}\n");
    if let Err(e) = std::fs::write("results/BENCH_sim.json", &out) {
        eprintln!("# BENCH_sim.json write failed: {e}");
    } else {
        println!("# wrote results/BENCH_sim.json");
    }

    // Acceptance bar (ISSUE 9): the wheel must beat the reference heap at
    // least 5x on pure-timer churn, the workload the overhaul targets.
    let timer = results.iter().find(|ab| ab.name == "timer").expect("ran");
    if timer.speedup() < 5.0 {
        eprintln!(
            "FAIL: timer-wheel speedup {:.2}x < 5x on pure-timer churn \
             ({:.0} vs {:.0} events/sec)",
            timer.speedup(),
            timer.wheel_eps(),
            timer.heap_eps()
        );
        std::process::exit(1);
    }
    println!(
        "\nok: {:.1}x wheel speedup on pure-timer churn (>= 5x), \
         identical delivery hashes on all workloads",
        timer.speedup()
    );
}
