//! Incremental-vs-full checkpoint storage over N generations.
//!
//! The paper writes every generation as a full compressed image (§5.3); the
//! `ckptstore` crate replaces that with content-addressed chunks so an
//! unchanged process pays only its churn. This bench runs N checkpoint
//! generations of the NAS/MG MPI job and of RunCMS, once with plain files
//! and once through the store, and reports per-generation *physical* bytes
//! (from the `mtcp.image.bytes` / `ckptstore.bytes_written` counters — the
//! store never materializes plain files, so file sizes would be
//! meaningless) together with checkpoint latency.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin ckptstore`
//! Pass `--smoke` for the cheap 3-generation variant tier-1 runs.

use apps::nas::{nas_factory, NasKernel};
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Session};
use dmtcp_bench::{ckpt_seconds, cluster_world, desktop_world, options, write_jsonl_lines, EV};
use obs::json::JsonWriter;
use oskit::world::{NodeId, OsSim, World};
use simkit::Nanos;
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

struct GenRow {
    gen: u64,
    ckpt_s: f64,
    logical: u64,
    physical: u64,
}

/// Checkpoint `gens` times, recording logical image bytes and physical
/// stored bytes per generation from the world's counters.
fn measure_gens(
    w: &mut World,
    sim: &mut OsSim,
    s: &Session,
    store: bool,
    gens: u32,
    gap: Nanos,
) -> Vec<GenRow> {
    let mut rows = Vec::new();
    let mut logical0 = 0u64;
    let mut physical0 = 0u64;
    for _ in 0..gens {
        let g = s.checkpoint_and_wait(w, sim, EV).expect_ckpt();
        let logical = w.obs.metrics.counter_total("mtcp.image.bytes");
        let physical = if store {
            w.obs.metrics.counter_total("ckptstore.bytes_written")
        } else {
            logical
        };
        rows.push(GenRow {
            gen: g.gen,
            ckpt_s: ckpt_seconds(&g),
            logical: logical - logical0,
            physical: physical - physical0,
        });
        logical0 = logical;
        physical0 = physical;
        run_for(w, sim, gap);
    }
    rows
}

fn nas_rows(kernel: NasKernel, store: bool, gens: u32) -> Vec<GenRow> {
    const NODES: usize = 4;
    let (mut w, mut sim) = cluster_world(NODES);
    if store {
        ckptstore::install(&mut w, ckptstore::Config::default());
    }
    let s = Session::start(&mut w, &mut sim, options(true, false, true));
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..NODES as u32).map(NodeId).collect(),
        procs_per_node: 2,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        nas_factory(kernel, 1_000_000, 1024),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    measure_gens(&mut w, &mut sim, &s, store, gens, Nanos::from_millis(50))
}

fn runcms_rows(store: bool, gens: u32) -> Vec<GenRow> {
    let (mut w, mut sim) = desktop_world();
    if store {
        ckptstore::install(&mut w, ckptstore::Config::default());
    }
    let s = Session::start(&mut w, &mut sim, options(true, false, false));
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    run_for(&mut w, &mut sim, Nanos::from_secs(60));
    measure_gens(&mut w, &mut sim, &s, store, gens, Nanos::from_secs(1))
}

fn report(label: &str, full: &[GenRow], inc: &[GenRow], out: &mut Vec<String>) {
    println!("\n{label}: full-image vs ckptstore, per generation");
    println!("  gen   full MB   store MB   saved   full s   store s");
    for (f, i) in full.iter().zip(inc.iter()) {
        let mb = |b: u64| b as f64 / (1 << 20) as f64;
        let saved = 1.0 - i.physical as f64 / f.physical.max(1) as f64;
        println!(
            "  {:>3}   {:>7.1}   {:>8.1}   {:>4.0}%   {:>6.2}   {:>7.2}",
            f.gen,
            mb(f.physical),
            mb(i.physical),
            saved * 100.0,
            f.ckpt_s,
            i.ckpt_s
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("workload", label)
            .field_u64("gen", f.gen)
            .field_u64("full_bytes", f.physical)
            .field_u64("store_bytes", i.physical)
            .field_u64("logical_bytes", i.logical)
            .field_f64("full_ckpt_s", f.ckpt_s)
            .field_f64("store_ckpt_s", i.ckpt_s)
            .obj_end();
        out.push(j.into_string());
    }
    let steady: Vec<&GenRow> = inc.iter().skip(1).collect();
    if !steady.is_empty() {
        let phys: u64 = steady.iter().map(|r| r.physical).sum();
        let logi: u64 = steady.iter().map(|r| r.logical).sum();
        println!(
            "  steady-state dedup (gen ≥ 2): {:.1}% of logical bytes stored",
            100.0 * phys as f64 / logi.max(1) as f64
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gens: u32 = if smoke { 3 } else { 6 };
    println!("# ckptstore: {gens} generations, NAS/MG + NAS/IS (4 nodes x 2) + RunCMS");

    let mut lines = Vec::new();
    report(
        "NAS/MG",
        &nas_rows(NasKernel::Mg, false, gens),
        &nas_rows(NasKernel::Mg, true, gens),
        &mut lines,
    );
    if !smoke {
        report(
            "NAS/IS",
            &nas_rows(NasKernel::Is, false, gens),
            &nas_rows(NasKernel::Is, true, gens),
            &mut lines,
        );
        report(
            "RunCMS",
            &runcms_rows(false, gens),
            &runcms_rows(true, gens),
            &mut lines,
        );
    }
    match write_jsonl_lines("ckptstore", lines) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
