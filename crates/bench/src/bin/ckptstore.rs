//! Incremental-vs-full checkpoint storage over N generations.
//!
//! The paper writes every generation as a full compressed image (§5.3); the
//! `ckptstore` crate replaces that with content-addressed chunks so an
//! unchanged process pays only its churn. This bench runs N checkpoint
//! generations of the NAS/MG MPI job and of RunCMS, once with plain files
//! and once through the store, and reports per-generation *physical* bytes
//! (from the `mtcp.image.bytes` / `ckptstore.bytes_written` counters — the
//! store never materializes plain files, so file sizes would be
//! meaningless) together with checkpoint latency.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin ckptstore`
//! Pass `--smoke` for the cheap 3-generation variant tier-1 runs.

use apps::memhog::IdleHog;
use apps::nas::{nas_factory, NasKernel};
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Session};
use dmtcp_bench::{
    ckpt_seconds, cluster_world, desktop_world, merge_flat_json, options, write_jsonl_lines, EV,
};
use obs::json::JsonWriter;
use oskit::world::{NodeId, OsSim, World};
use simkit::Nanos;
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

struct GenRow {
    gen: u64,
    ckpt_s: f64,
    logical: u64,
    physical: u64,
}

/// Checkpoint `gens` times, recording logical image bytes and physical
/// stored bytes per generation from the world's counters.
fn measure_gens(
    w: &mut World,
    sim: &mut OsSim,
    s: &Session,
    store: bool,
    gens: u32,
    gap: Nanos,
) -> Vec<GenRow> {
    let mut rows = Vec::new();
    let mut logical0 = 0u64;
    let mut physical0 = 0u64;
    for _ in 0..gens {
        let g = s.checkpoint_and_wait(w, sim, EV).expect_ckpt();
        let logical = w.obs.metrics.counter_total("mtcp.image.bytes");
        let physical = if store {
            w.obs.metrics.counter_total("ckptstore.bytes_written")
        } else {
            logical
        };
        rows.push(GenRow {
            gen: g.gen,
            ckpt_s: ckpt_seconds(&g),
            logical: logical - logical0,
            physical: physical - physical0,
        });
        logical0 = logical;
        physical0 = physical;
        run_for(w, sim, gap);
    }
    rows
}

fn nas_rows(kernel: NasKernel, store: bool, gens: u32) -> Vec<GenRow> {
    const NODES: usize = 4;
    let (mut w, mut sim) = cluster_world(NODES);
    if store {
        ckptstore::install(&mut w, ckptstore::Config::default());
    }
    let s = Session::start(&mut w, &mut sim, options(true, false, true));
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..NODES as u32).map(NodeId).collect(),
        procs_per_node: 2,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        nas_factory(kernel, 1_000_000, 1024),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    measure_gens(&mut w, &mut sim, &s, store, gens, Nanos::from_millis(50))
}

fn runcms_rows(store: bool, gens: u32) -> Vec<GenRow> {
    let (mut w, mut sim) = desktop_world();
    if store {
        ckptstore::install(&mut w, ckptstore::Config::default());
    }
    let s = Session::start(&mut w, &mut sim, options(true, false, false));
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "runCMS",
        Box::new(apps::runcms::RunCms::new()),
    );
    run_for(&mut w, &mut sim, Nanos::from_secs(60));
    measure_gens(&mut w, &mut sim, &s, store, gens, Nanos::from_secs(1))
}

fn report(label: &str, full: &[GenRow], inc: &[GenRow], out: &mut Vec<String>) {
    println!("\n{label}: full-image vs ckptstore, per generation");
    println!("  gen   full MB   store MB   saved   full s   store s");
    for (f, i) in full.iter().zip(inc.iter()) {
        let mb = |b: u64| b as f64 / (1 << 20) as f64;
        let saved = 1.0 - i.physical as f64 / f.physical.max(1) as f64;
        println!(
            "  {:>3}   {:>7.1}   {:>8.1}   {:>4.0}%   {:>6.2}   {:>7.2}",
            f.gen,
            mb(f.physical),
            mb(i.physical),
            saved * 100.0,
            f.ckpt_s,
            i.ckpt_s
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("workload", label)
            .field_u64("gen", f.gen)
            .field_u64("full_bytes", f.physical)
            .field_u64("store_bytes", i.physical)
            .field_u64("logical_bytes", i.logical)
            .field_f64("full_ckpt_s", f.ckpt_s)
            .field_f64("store_ckpt_s", i.ckpt_s)
            .obj_end();
        out.push(j.into_string());
    }
    let steady: Vec<&GenRow> = inc.iter().skip(1).collect();
    if !steady.is_empty() {
        let phys: u64 = steady.iter().map(|r| r.physical).sum();
        let logi: u64 = steady.iter().map(|r| r.logical).sum();
        println!(
            "  steady-state dedup (gen ≥ 2): {:.1}% of logical bytes stored",
            100.0 * phys as f64 / logi.max(1) as f64
        );
    }
}

/// The tentpole's mostly-idle workload: 32 MiB of real ballast written
/// once, a 64 KiB scratch buffer rewritten every wake. Both runs go
/// through the chunk store; `incremental` toggles the dirty-region writer
/// so the comparison isolates capture cost, not storage cost.
fn idle_rows(incremental: bool, gens: u32) -> Vec<GenRow> {
    let (mut w, mut sim) = desktop_world();
    ckptstore::install(&mut w, ckptstore::Config::default());
    mtcp::incr::set_enabled(&mut w, incremental);
    let s = Session::start(&mut w, &mut sim, options(true, false, false));
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "idlehog",
        Box::new(IdleHog::new(32)),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(200));
    let rows = measure_gens(&mut w, &mut sim, &s, true, gens, Nanos::from_millis(100));
    if incremental {
        assert!(
            w.obs.metrics.counter_total("mtcp.incr.images") > 0,
            "incremental run must capture at least one incremental image"
        );
    }
    rows
}

/// Per-generation total-time table for the incremental writer, plus the
/// flat gate metrics: mean generation ≥ 2 checkpoint seconds for full and
/// incremental capture and their ratio (higher is better).
fn report_incr(full: &[GenRow], inc: &[GenRow], out: &mut Vec<String>) -> [(&'static str, f64); 3] {
    println!("\nIdleHog: full capture vs incremental dirty-region capture, per generation");
    println!("  gen    full s    incr s   speedup   incr store MB");
    for (f, i) in full.iter().zip(inc.iter()) {
        println!(
            "  {:>3}   {:>7.3}   {:>7.3}   {:>6.1}x   {:>13.2}",
            f.gen,
            f.ckpt_s,
            i.ckpt_s,
            f.ckpt_s / i.ckpt_s.max(1e-12),
            i.physical as f64 / (1 << 20) as f64,
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("workload", "IdleHog")
            .field_u64("gen", f.gen)
            .field_f64("full_ckpt_s", f.ckpt_s)
            .field_f64("incr_ckpt_s", i.ckpt_s)
            .field_u64("full_bytes", f.physical)
            .field_u64("incr_bytes", i.physical)
            .obj_end();
        out.push(j.into_string());
    }
    let mean = |rows: &[GenRow]| {
        let steady: Vec<f64> = rows.iter().skip(1).map(|r| r.ckpt_s).collect();
        steady.iter().sum::<f64>() / steady.len().max(1) as f64
    };
    let (full_s, incr_s) = (mean(full), mean(inc));
    [
        ("full_gen2_total_s", full_s),
        ("incr_gen2_total_s", incr_s),
        ("incr_speedup_ratio", full_s / incr_s.max(1e-12)),
    ]
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gens: u32 = if smoke { 3 } else { 6 };
    println!("# ckptstore: {gens} generations, NAS/MG + NAS/IS (4 nodes x 2) + RunCMS");

    let mut lines = Vec::new();
    report(
        "NAS/MG",
        &nas_rows(NasKernel::Mg, false, gens),
        &nas_rows(NasKernel::Mg, true, gens),
        &mut lines,
    );
    if !smoke {
        report(
            "NAS/IS",
            &nas_rows(NasKernel::Is, false, gens),
            &nas_rows(NasKernel::Is, true, gens),
            &mut lines,
        );
        report(
            "RunCMS",
            &runcms_rows(false, gens),
            &runcms_rows(true, gens),
            &mut lines,
        );
    }
    // Tentpole gate: on a mostly-idle image, incremental dirty-region
    // capture must cut generation ≥ 2 checkpoint wall-clock at least 10×.
    // Runs in smoke too so tier-1 gates it on every PR (the flat keys feed
    // scripts/bench_gate.sh via results/BENCH_ckpt.json).
    let gate = report_incr(&idle_rows(false, gens), &idle_rows(true, gens), &mut lines);

    match write_jsonl_lines("ckptstore", lines) {
        Ok(p) => println!("# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
    match merge_flat_json("results/BENCH_ckpt.json", &gate) {
        Ok(()) => println!("# merged results/BENCH_ckpt.json"),
        Err(e) => eprintln!("# BENCH_ckpt.json write failed: {e}"),
    }

    let speedup = gate[2].1;
    if speedup < 10.0 {
        eprintln!(
            "FAIL: incremental gen>=2 checkpoint must be >=10x faster than full capture \
             on the mostly-idle image (got {speedup:.1}x: full {:.3}s vs incr {:.3}s)",
            gate[0].1, gate[1].1
        );
        std::process::exit(1);
    }
    println!("\nok: incremental gen>=2 checkpoints {speedup:.1}x faster than full capture");
}
