//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Forked vs. in-line checkpointing** as the image grows (the paper's
//!    0.2 s claim is an artifact of COW fork + background compression).
//! 2. **Centralized coordinator scaling**: barrier-bound checkpoint time of
//!    a tiny-image job vs. process count — §5.4's "the single checkpoint
//!    coordinator is not a bottleneck".
//! 3. **Compression crossover**: gzip wins on disk bytes but loses on
//!    checkpoint latency once images are incompressible.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin ablation`

use apps::nas::baseline_factory;
use dmtcp::coord::stage;
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Session};
use dmtcp_bench::{
    cluster_world, measure_checkpoints, options, run_parallel, write_jsonl_lines, EV,
};
use obs::json::JsonWriter;
use oskit::mem::FillProfile;
use oskit::program::{Program, Step};
use oskit::world::NodeId;
use oskit::Kernel;
use simkit::{Nanos, Snap};
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

/// A single process holding `mb` of data with the given profile, idling.
struct Holder {
    pc: u8,
    mb: u64,
    zero_pct: u8,
}
simkit::impl_snap!(struct Holder { pc, mb, zero_pct });
impl Program for Holder {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                k.mmap_synthetic(
                    "data",
                    self.mb << 20,
                    7,
                    FillProfile::Mixed {
                        zero_pct: self.zero_pct,
                        text_pct: 0,
                        code_pct: 0,
                    },
                );
                self.pc = 1;
                Step::Yield
            }
            _ => Step::Sleep(Nanos::from_millis(10)),
        }
    }
    fn tag(&self) -> &'static str {
        "ablate-holder"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn pause_of(mb: u64, forked: bool) -> f64 {
    let (mut w, mut sim) = cluster_world(1);
    w.registry.register_snap::<Holder>("ablate-holder");
    let s = Session::start(&mut w, &mut sim, options(true, forked, true));
    s.launch(
        &mut w,
        &mut sim,
        NodeId(0),
        "holder",
        Box::new(Holder {
            pc: 0,
            mb,
            zero_pct: 20,
        }),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(20));
    let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    g.total_pause().expect("complete").as_secs_f64()
}

fn barrier_scaling(nodes: usize) -> (u32, f64) {
    let (mut w, mut sim) = cluster_world(nodes);
    let s = Session::start(&mut w, &mut sim, options(true, false, true));
    let job = MpiJob {
        flavor: Flavor::Mpich2,
        nodes: (0..nodes as u32).map(NodeId).collect(),
        procs_per_node: 4,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        baseline_factory(0),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    // Pure coordination cost: everything except the image write.
    let t = (g.releases[&stage::DRAINED] - g.requested_at).as_secs_f64();
    (g.participants, t)
}

fn main() {
    let mut lines: Vec<String> = Vec::new();
    println!("# Ablation 1: user-visible pause, in-line vs forked checkpointing\n");
    println!(
        "{:<10} {:>12} {:>12} {:>8}",
        "image", "inline", "forked", "ratio"
    );
    let sizes = [16u64, 64, 256, 1024];
    type PauseJob = Box<dyn FnOnce() -> (u64, f64, f64) + Send>;
    let jobs: Vec<PauseJob> = sizes
        .iter()
        .map(|&mb| Box::new(move || (mb, pause_of(mb, false), pause_of(mb, true))) as PauseJob)
        .collect();
    for (mb, inline, forked) in run_parallel(jobs) {
        println!(
            "{:>6} MB {:>11.3}s {:>11.3}s {:>7.1}x",
            mb,
            inline,
            forked,
            inline / forked.max(1e-9)
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("ablation", "forked_vs_inline")
            .field_u64("image_mb", mb)
            .field_f64("inline_s", inline)
            .field_f64("forked_s", forked)
            .obj_end();
        lines.push(j.into_string());
    }

    println!("\n# Ablation 2: coordination (suspend+elect+drain) cost vs process count");
    println!("# (tiny images: isolates the centralized barrier coordinator)\n");
    let jobs: Vec<Box<dyn FnOnce() -> (u32, f64) + Send>> = [2usize, 4, 8, 16, 32]
        .iter()
        .map(|&n| Box::new(move || barrier_scaling(n)) as Box<dyn FnOnce() -> (u32, f64) + Send>)
        .collect();
    for (procs, t) in run_parallel(jobs) {
        println!("{procs:>4} procs   coordination {t:.4}s");
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("ablation", "coordinator_scaling")
            .field_u64("procs", procs as u64)
            .field_f64("coordination_s", t)
            .obj_end();
        lines.push(j.into_string());
    }

    println!("\n# Ablation 3: compression crossover vs content compressibility\n");
    for zero_pct in [0u8, 50, 95] {
        let run = |compress: bool| -> (f64, u64) {
            let (mut w, mut sim) = cluster_world(1);
            w.registry.register_snap::<Holder>("ablate-holder");
            let s = Session::start(&mut w, &mut sim, options(compress, false, true));
            s.launch(
                &mut w,
                &mut sim,
                NodeId(0),
                "holder",
                Box::new(Holder {
                    pc: 0,
                    mb: 256,
                    zero_pct,
                }),
            );
            run_for(&mut w, &mut sim, Nanos::from_millis(20));
            let (t, size, _) = measure_checkpoints(&mut w, &mut sim, &s, 1, Nanos::from_millis(10));
            (t[0], size)
        };
        let (t_raw, s_raw) = run(false);
        let (t_gz, s_gz) = run(true);
        println!(
            "{zero_pct:>3}% zeros: raw {t_raw:6.3}s/{:7.1}MB   gzip {t_gz:6.3}s/{:7.1}MB",
            s_raw as f64 / (1 << 20) as f64,
            s_gz as f64 / (1 << 20) as f64,
        );
        let mut j = JsonWriter::new();
        j.obj_begin()
            .field_str("ablation", "compression_crossover")
            .field_u64("zero_pct", zero_pct as u64)
            .field_f64("raw_s", t_raw)
            .field_u64("raw_bytes", s_raw)
            .field_f64("gzip_s", t_gz)
            .field_u64("gzip_bytes", s_gz)
            .obj_end();
        lines.push(j.into_string());
    }
    match write_jsonl_lines("ablation", lines) {
        Ok(p) => println!("\n# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
