//! Table 1 — time for the different stages of checkpoint (a) and restart
//! (b) for NAS/MG under OpenMPI on 8 nodes, in uncompressed, compressed,
//! and forked-compressed modes. This is the calibration anchor for every
//! other figure (see DESIGN.md §4).
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin table1`

use apps::nas::{nas_factory, NasKernel};
use dmtcp::coord::{coord_shared, RestartSample, StageSample};
use dmtcp::session::run_for;
use dmtcp::Session;
use dmtcp_bench::{cluster_world, kill_and_measure_restart, options, EV};
use oskit::world::NodeId;
use simkit::Nanos;
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const NODES: usize = 8;

struct Breakdown {
    suspend: f64,
    elect: f64,
    drain: f64,
    write: f64,
    refill: f64,
}

fn mean_stage(samples: &[StageSample]) -> Breakdown {
    let n = samples.len() as f64;
    let s = |f: &dyn Fn(&StageSample) -> Nanos| {
        samples.iter().map(|x| f(x).as_secs_f64()).sum::<f64>() / n
    };
    Breakdown {
        suspend: s(&|x| x.suspend),
        elect: s(&|x| x.elect),
        drain: s(&|x| x.drain),
        write: s(&|x| x.write),
        refill: s(&|x| x.refill),
    }
}

struct RestartBreakdown {
    files: f64,
    sockets: f64,
    memory: f64,
    refill: f64,
}

fn mean_restart(samples: &[RestartSample]) -> RestartBreakdown {
    let n = samples.len() as f64;
    RestartBreakdown {
        files: samples.iter().map(|x| x.files.as_secs_f64()).sum::<f64>() / n,
        sockets: samples.iter().map(|x| x.sockets.as_secs_f64()).sum::<f64>() / n,
        memory: samples.iter().map(|x| x.memory.as_secs_f64()).sum::<f64>() / n,
        refill: samples.iter().map(|x| x.refill.as_secs_f64()).sum::<f64>() / n,
    }
}

fn run_mode(compression: bool, forked: bool) -> (Breakdown, Option<RestartBreakdown>, f64) {
    let (mut w, mut sim) = cluster_world(NODES);
    let s = Session::start(&mut w, &mut sim, options(compression, forked, true));
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..NODES as u32).map(NodeId).collect(),
        procs_per_node: 4,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        nas_factory(NasKernel::Mg, 1_000_000, 1024),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let g = s.checkpoint_and_wait(&mut w, &mut sim, EV);
    // Managers record their per-stage samples when they resume user
    // threads, shortly after the final barrier releases.
    run_for(&mut w, &mut sim, Nanos::from_millis(50));
    let gen = g.gen;
    let stages: Vec<StageSample> = coord_shared(&mut w)
        .stage_samples
        .iter()
        .filter(|x| x.gen == gen)
        .copied()
        .collect();
    let ckpt = mean_stage(&stages);
    // Restart breakdown only makes sense for non-forked modes in the
    // paper's table; measure it anyway except for forked.
    let (restart_bd, total_restart) = if forked {
        (None, 0.0)
    } else {
        let total = kill_and_measure_restart(&mut w, &mut sim, &s);
        run_for(&mut w, &mut sim, Nanos::from_millis(50));
        let rs: Vec<RestartSample> = coord_shared(&mut w).restart_samples.clone();
        (Some(mean_restart(&rs)), total)
    };
    (ckpt, restart_bd, total_restart)
}

fn main() {
    println!("# Table 1: stage breakdown for NAS/MG under OpenMPI, 8 nodes (seconds)");
    println!("# (a) checkpoint\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "Stage", "Uncompressed", "Compressed", "Fork Compr."
    );
    let (un, un_restart, _un_total) = run_mode(false, false);
    let (co, co_restart, _co_total) = run_mode(true, false);
    let (fo, _, _) = run_mode(true, true);
    let row = |name: &str, f: &dyn Fn(&Breakdown) -> f64| {
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>12.4}",
            name,
            f(&un),
            f(&co),
            f(&fo)
        );
    };
    row("Suspend user threads", &|b| b.suspend);
    row("Elect FD leaders", &|b| b.elect);
    row("Drain kernel buffers", &|b| b.drain);
    row("Write checkpoint", &|b| b.write);
    row("Refill kernel buffers", &|b| b.refill);
    let total = |b: &Breakdown| b.suspend + b.elect + b.drain + b.write + b.refill;
    println!(
        "{:<24} {:>12.4} {:>12.4} {:>12.4}",
        "Total",
        total(&un),
        total(&co),
        total(&fo)
    );

    println!("\n# (b) restart\n");
    println!("{:<24} {:>12} {:>12}", "Stage", "Uncompressed", "Compressed");
    let (ur, cr) = (un_restart.expect("measured"), co_restart.expect("measured"));
    let rrow = |name: &str, f: &dyn Fn(&RestartBreakdown) -> f64| {
        println!("{:<24} {:>12.4} {:>12.4}", name, f(&ur), f(&cr));
    };
    rrow("Restore files and ptys", &|b| b.files);
    rrow("Reconnect sockets", &|b| b.sockets);
    rrow("Restore memory/threads", &|b| b.memory);
    rrow("Refill kernel buffers", &|b| b.refill);
    let rtotal = |b: &RestartBreakdown| b.files + b.sockets + b.memory + b.refill;
    println!(
        "{:<24} {:>12.4} {:>12.4}",
        "Total",
        rtotal(&ur),
        rtotal(&cr)
    );
}
