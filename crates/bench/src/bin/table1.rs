//! Table 1 — time for the different stages of checkpoint (a) and restart
//! (b) for NAS/MG under OpenMPI on 8 nodes, in uncompressed, compressed,
//! and forked-compressed modes. This is the calibration anchor for every
//! other figure (see DESIGN.md §4).
//!
//! The stage breakdowns are read back out of the world's metrics registry
//! (`core.stage.*` / `core.restart.*` histograms) — the same numbers the
//! observability layer exports — rather than plumbed through ad-hoc
//! sample vectors.
//!
//! Regenerate with: `cargo run --release -p dmtcp-bench --bin table1`
//! Pass `--trace-out <file>` to also dump a Perfetto-loadable Chrome trace
//! of the uncompressed mode's checkpoint generation.

use apps::nas::{nas_factory, NasKernel};
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Session};
use dmtcp_bench::{
    cluster_world, dump_trace, kill_and_measure_restart, options, restart_breakdown,
    stage_breakdown, trace_out_arg, write_jsonl_lines, RestartBreakdown, StageBreakdown, EV,
};
use obs::json::JsonWriter;
use oskit::world::NodeId;
use simkit::Nanos;
use simmpi::launch::{mpirun, Flavor, Launcher, MpiJob};

const NODES: usize = 8;

fn run_mode(
    compression: bool,
    forked: bool,
    trace: Option<&str>,
) -> (StageBreakdown, Option<RestartBreakdown>, f64) {
    let (mut w, mut sim) = cluster_world(NODES);
    if trace.is_some() {
        w.obs.spans.set_enabled(true);
    }
    let s = Session::start(&mut w, &mut sim, options(compression, forked, true));
    let job = MpiJob {
        flavor: Flavor::OpenMpi,
        nodes: (0..NODES as u32).map(NodeId).collect(),
        procs_per_node: 4,
        base_port: 30_000,
    };
    mpirun(
        &mut w,
        &mut sim,
        Launcher::Dmtcp(&s),
        &job,
        nas_factory(NasKernel::Mg, 1_000_000, 1024),
    );
    run_for(&mut w, &mut sim, Nanos::from_millis(400));
    let g = s.checkpoint_and_wait(&mut w, &mut sim, EV).expect_ckpt();
    // Managers record their per-stage samples when they resume user
    // threads, shortly after the final barrier releases.
    run_for(&mut w, &mut sim, Nanos::from_millis(50));
    let ckpt = stage_breakdown(&w, Some(g.gen));
    if let Some(path) = trace {
        match dump_trace(&w, path) {
            Ok(()) => println!("# wrote trace {path}"),
            Err(e) => eprintln!("# trace write failed: {e}"),
        }
    }
    // Restart breakdown only makes sense for non-forked modes in the
    // paper's table; measure it anyway except for forked.
    let (restart_bd, total_restart) = if forked {
        (None, 0.0)
    } else {
        let total = kill_and_measure_restart(&mut w, &mut sim, &s);
        run_for(&mut w, &mut sim, Nanos::from_millis(50));
        (Some(restart_breakdown(&w, None)), total)
    };
    (ckpt, restart_bd, total_restart)
}

fn stages_obj(j: &mut JsonWriter, b: &StageBreakdown) {
    j.obj_begin()
        .field_f64("suspend_s", b.suspend)
        .field_f64("elect_s", b.elect)
        .field_f64("drain_s", b.drain)
        .field_f64("write_s", b.write)
        .field_f64("refill_s", b.refill)
        .field_f64("total_s", b.total())
        .obj_end();
}

fn mode_line(
    mode: &str,
    ckpt: &StageBreakdown,
    restart: &Option<RestartBreakdown>,
    total_restart: f64,
) -> String {
    let mut j = JsonWriter::new();
    j.obj_begin().field_str("mode", mode);
    j.key("ckpt");
    stages_obj(&mut j, ckpt);
    if let Some(r) = restart {
        j.key("restart")
            .obj_begin()
            .field_f64("files_s", r.files)
            .field_f64("sockets_s", r.sockets)
            .field_f64("memory_s", r.memory)
            .field_f64("refill_s", r.refill)
            .field_f64("total_s", r.total())
            .field_f64("measured_total_s", total_restart)
            .obj_end();
    }
    j.obj_end();
    j.into_string()
}

fn main() {
    let trace = trace_out_arg();
    println!("# Table 1: stage breakdown for NAS/MG under OpenMPI, 8 nodes (seconds)");
    println!("# (a) checkpoint\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "Stage", "Uncompressed", "Compressed", "Fork Compr."
    );
    let (un, un_restart, un_total) = run_mode(false, false, trace.as_deref());
    let (co, co_restart, co_total) = run_mode(true, false, None);
    let (fo, _, _) = run_mode(true, true, None);
    let row = |name: &str, f: &dyn Fn(&StageBreakdown) -> f64| {
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>12.4}",
            name,
            f(&un),
            f(&co),
            f(&fo)
        );
    };
    row("Suspend user threads", &|b| b.suspend);
    row("Elect FD leaders", &|b| b.elect);
    row("Drain kernel buffers", &|b| b.drain);
    row("Write checkpoint", &|b| b.write);
    row("Refill kernel buffers", &|b| b.refill);
    println!(
        "{:<24} {:>12.4} {:>12.4} {:>12.4}",
        "Total",
        un.total(),
        co.total(),
        fo.total()
    );

    println!("\n# (b) restart\n");
    println!(
        "{:<24} {:>12} {:>12}",
        "Stage", "Uncompressed", "Compressed"
    );
    let (ur, cr) = (un_restart.expect("measured"), co_restart.expect("measured"));
    let rrow = |name: &str, f: &dyn Fn(&RestartBreakdown) -> f64| {
        println!("{:<24} {:>12.4} {:>12.4}", name, f(&ur), f(&cr));
    };
    rrow("Restore files and ptys", &|b| b.files);
    rrow("Reconnect sockets", &|b| b.sockets);
    rrow("Restore memory/threads", &|b| b.memory);
    rrow("Refill kernel buffers", &|b| b.refill);
    println!("{:<24} {:>12.4} {:>12.4}", "Total", ur.total(), cr.total());

    let lines = vec![
        mode_line("uncompressed", &un, &Some(ur), un_total),
        mode_line("compressed", &co, &Some(cr), co_total),
        mode_line("forked", &fo, &None, 0.0),
    ];
    match write_jsonl_lines("table1", lines) {
        Ok(p) => println!("\n# wrote {p}"),
        Err(e) => eprintln!("# jsonl write failed: {e}"),
    }
}
