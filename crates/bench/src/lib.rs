//! Experiment harness: everything the per-figure binaries share.
//!
//! Each experiment builds a fresh simulated cluster, launches a workload
//! under DMTCP, requests checkpoints, optionally kills and restarts the
//! computation, and reads the coordinator's barrier timings — the same
//! quantities the paper reports. Independent experiment configurations run
//! in parallel on host threads (each owns its own world) through
//! [`run_parallel`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apps::registry::full_registry;
use dmtcp::coord::{coord_shared, stage, GenStat};
use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, RestartPlan, Session};
use oskit::world::{OsSim, World};
use oskit::HwSpec;
use simkit::{Nanos, Sim, Summary};

/// Event budget per phase — generous; a hang is a bug.
pub const EV: u64 = 400_000_000;

/// Mean seconds per Figure-1 checkpoint stage, derived from the
/// `core.stage.*` histograms the managers record into the world's metrics
/// registry (one sample per process per generation).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageBreakdown {
    /// Suspend user threads.
    pub suspend: f64,
    /// Elect fd leaders.
    pub elect: f64,
    /// Drain kernel buffers.
    pub drain: f64,
    /// Write checkpoint image.
    pub write: f64,
    /// Refill kernel buffers.
    pub refill: f64,
}

impl StageBreakdown {
    /// Sum of the stage means — the paper's "total" row.
    pub fn total(&self) -> f64 {
        self.suspend + self.elect + self.drain + self.write + self.refill
    }
}

/// Mean seconds per Figure-2 restart step (`core.restart.*` histograms).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RestartBreakdown {
    /// Restore files and ptys.
    pub files: f64,
    /// Recreate and reconnect sockets.
    pub sockets: f64,
    /// Restore memory and threads.
    pub memory: f64,
    /// Refill kernel buffers.
    pub refill: f64,
}

impl RestartBreakdown {
    /// Sum of the step means.
    pub fn total(&self) -> f64 {
        self.files + self.sockets + self.memory + self.refill
    }
}

fn hist_mean_secs(w: &World, name: &'static str, gen: Option<u64>) -> f64 {
    let h = match gen {
        Some(g) => w.obs.metrics.hist(name, g).copied().unwrap_or_default(),
        None => w.obs.metrics.hist_merged(name),
    };
    if h.count() == 0 {
        0.0
    } else {
        h.sum() as f64 / h.count() as f64 / 1e9
    }
}

/// Read the checkpoint stage breakdown back out of the metrics registry:
/// the mean over every process sample of generation `gen`, or over all
/// generations recorded in `w` when `None`.
pub fn stage_breakdown(w: &World, gen: Option<u64>) -> StageBreakdown {
    StageBreakdown {
        suspend: hist_mean_secs(w, "core.stage.suspend", gen),
        elect: hist_mean_secs(w, "core.stage.elect", gen),
        drain: hist_mean_secs(w, "core.stage.drain", gen),
        write: hist_mean_secs(w, "core.stage.write", gen),
        refill: hist_mean_secs(w, "core.stage.refill", gen),
    }
}

/// Read the restart step breakdown out of the metrics registry.
pub fn restart_breakdown(w: &World, gen: Option<u64>) -> RestartBreakdown {
    RestartBreakdown {
        files: hist_mean_secs(w, "core.restart.files", gen),
        sockets: hist_mean_secs(w, "core.restart.sockets", gen),
        memory: hist_mean_secs(w, "core.restart.memory", gen),
        refill: hist_mean_secs(w, "core.restart.refill", gen),
    }
}

/// One experiment's measurements.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Label for the output row.
    pub label: String,
    /// Checkpoint wall-clock times (request → stage-5 barrier), seconds.
    pub ckpt_s: Summary,
    /// Restart wall-clock (plan → restart-refill barrier), seconds.
    pub restart_s: Option<f64>,
    /// Aggregate (cluster-wide) image bytes of the last generation.
    pub image_bytes: u64,
    /// Number of checkpointed processes.
    pub participants: u32,
    /// Per-stage means from the metrics registry (when measured).
    pub stages: Option<StageBreakdown>,
}

impl ExpResult {
    /// Paper-style row: label, ckpt mean±σ, restart, size in MB.
    pub fn row(&self) -> String {
        format!(
            "{:<24} ckpt {:6.2}s ±{:4.2}  restart {:>6}  size {:9.1} MB  ({} procs)",
            self.label,
            self.ckpt_s.mean,
            self.ckpt_s.stddev,
            self.restart_s
                .map(|r| format!("{r:5.2}s"))
                .unwrap_or_else(|| "  n/a".into()),
            self.image_bytes as f64 / (1u64 << 20) as f64,
            self.participants,
        )
    }

    /// One machine-readable JSON object (a `results/<name>.jsonl` line).
    pub fn jsonl(&self) -> String {
        let mut j = obs::json::JsonWriter::new();
        j.obj_begin()
            .field_str("label", &self.label)
            .field_f64("ckpt_mean_s", self.ckpt_s.mean)
            .field_f64("ckpt_stddev_s", self.ckpt_s.stddev)
            .field_f64("ckpt_p50_s", self.ckpt_s.p50)
            .field_f64("ckpt_p90_s", self.ckpt_s.p90)
            .field_f64("ckpt_p99_s", self.ckpt_s.p99);
        // NaN renders as null — restart_s is optional.
        j.field_f64("restart_s", self.restart_s.unwrap_or(f64::NAN));
        j.field_u64("image_bytes", self.image_bytes)
            .field_u64("participants", self.participants as u64);
        if let Some(s) = self.stages {
            j.key("stages")
                .obj_begin()
                .field_f64("suspend_s", s.suspend)
                .field_f64("elect_s", s.elect)
                .field_f64("drain_s", s.drain)
                .field_f64("write_s", s.write)
                .field_f64("refill_s", s.refill)
                .obj_end();
        }
        j.obj_end();
        j.into_string()
    }
}

/// Write one JSONL line per result to `results/<name>.jsonl`; returns the
/// path written.
pub fn write_results_jsonl(name: &str, results: &[ExpResult]) -> std::io::Result<String> {
    write_jsonl_lines(name, results.iter().map(|r| r.jsonl()))
}

/// Write pre-rendered JSON lines to `results/<name>.jsonl`; returns the path
/// written. For binaries whose rows aren't [`ExpResult`]s.
pub fn write_jsonl_lines(
    name: &str,
    lines: impl IntoIterator<Item = String>,
) -> std::io::Result<String> {
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.jsonl");
    let mut out = String::new();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Merge flat numeric key/value pairs into a `{ "key": value, ... }` JSON
/// file, the format `scripts/bench_gate.sh` parses. Several binaries share
/// one gate file (`downtime` and `ckptstore` both feed
/// `results/BENCH_ckpt.json`), so each must keep the others' keys: existing
/// keys keep their position and are overwritten in place, new keys append.
pub fn merge_flat_json(path: &str, pairs: &[(&str, f64)]) -> std::io::Result<()> {
    let mut entries: Vec<(String, f64)> = Vec::new();
    if let Ok(old) = std::fs::read_to_string(path) {
        for line in old.lines() {
            let Some((rawk, rawv)) = line.split_once(':') else {
                continue;
            };
            let key = rawk.trim().trim_matches('"');
            if key.is_empty() {
                continue;
            }
            let Ok(val) = rawv.trim().trim_end_matches(',').parse::<f64>() else {
                continue;
            };
            entries.push((key.to_string(), val));
        }
    }
    for &(key, val) in pairs {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some(e) => e.1 = val,
            None => entries.push((key.to_string(), val)),
        }
    }
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v:.6}"))
        .collect();
    std::fs::write(path, format!("{{\n{}\n}}\n", body.join(",\n")))
}

/// Parse an opt-in `--trace-out <file>` (or `--trace-out=<file>`) flag.
/// When present, a figure binary enables span capture on one configuration
/// and dumps a Perfetto-loadable Chrome trace there via [`dump_trace`].
pub fn trace_out_arg() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            return args.next();
        }
        if let Some(rest) = a.strip_prefix("--trace-out=") {
            return Some(rest.to_string());
        }
    }
    None
}

/// Dump the world's recorded spans as Chrome trace-event JSON (open with
/// Perfetto / `chrome://tracing`).
pub fn dump_trace(w: &World, path: &str) -> std::io::Result<()> {
    std::fs::write(path, w.obs.chrome_trace())
}

/// A cluster world ready for experiments.
pub fn cluster_world(nodes: usize) -> (World, OsSim) {
    (
        World::new(HwSpec::cluster(), nodes, full_registry()),
        Sim::new(),
    )
}

/// A desktop world (single 8-core node).
pub fn desktop_world() -> (World, OsSim) {
    (
        World::new(HwSpec::desktop(), 1, full_registry()),
        Sim::new(),
    )
}

/// Standard options: images to the shared store unless `local_disk`.
pub fn options(compression: bool, forked: bool, local_disk: bool) -> Options {
    Options::builder()
        .ckpt_dir(if local_disk { "/ckpt" } else { "/shared/ckpt" })
        .compression(compression)
        .forked(forked)
        .build()
}

/// Checkpoint time (request → image-written barrier) in seconds.
pub fn ckpt_seconds(g: &GenStat) -> f64 {
    g.checkpoint_time()
        .expect("generation complete")
        .as_secs_f64()
}

/// Take `reps` checkpoints spaced by `gap`, returning their times and the
/// aggregate image size of the last one.
pub fn measure_checkpoints(
    w: &mut World,
    sim: &mut OsSim,
    s: &Session,
    reps: usize,
    gap: Nanos,
) -> (Vec<f64>, u64, u32) {
    let mut times = Vec::new();
    let mut size = 0;
    let mut parts = 0;
    for _ in 0..reps {
        let g = s.checkpoint_and_wait(w, sim, EV).expect_ckpt();
        times.push(ckpt_seconds(&g));
        parts = g.participants;
        let images = coord_shared(w).last_images.clone();
        size = images
            .iter()
            .map(|(path, host)| {
                let node = w.resolve(host).expect("host");
                w.fs_for(node, path).size(path).expect("image exists")
            })
            .sum();
        run_for(w, sim, gap);
    }
    (times, size, parts)
}

/// Kill the computation and restart it in place; returns the restart
/// wall-clock in seconds (plan arrival → restart-refill barrier).
pub fn kill_and_measure_restart(w: &mut World, sim: &mut OsSim, s: &Session) -> f64 {
    let gen = Session::last_gen_stat(w).expect("a checkpoint exists").gen;
    s.kill_computation(w, sim);
    RestartPlan::from_generation(w, s.opts.coord_port, gen)
        .expect("restart script written")
        .execute(s, w, sim)
        .expect("identity restart");
    Session::wait_restart_done(w, sim, gen, EV);
    let g = coord_shared(w)
        .gen_stats
        .iter()
        .rev()
        .find(|g| g.gen == gen && g.releases.contains_key(&stage::RESTART_REFILLED))
        .expect("restart stats recorded")
        .clone();
    (g.releases[&stage::RESTART_REFILLED] - g.requested_at).as_secs_f64()
}

/// Run independent experiment closures on parallel host threads, preserving
/// input order in the output.
pub fn run_parallel<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    let n = jobs.len();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|scope| {
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let out = job();
                tx.send((i, out)).expect("collector alive");
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in rx.iter() {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("job finished"))
        .collect()
}

/// Repetition count: figures use the paper's 10 unless `DMTCP_REPS` says
/// otherwise (CI uses fewer).
pub fn reps() -> usize {
    std::env::var("DMTCP_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(run_parallel(jobs), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn row_formatting_is_stable() {
        let r = ExpResult {
            label: "NAS/MG[3]".into(),
            ckpt_s: Summary::of(&[2.0, 2.2, 1.8]),
            restart_s: Some(2.5),
            image_bytes: 1536 << 20,
            participants: 131,
            stages: None,
        };
        let row = r.row();
        assert!(row.contains("NAS/MG[3]"));
        assert!(row.contains("1536.0 MB"));
        assert!(row.contains("131 procs"));
    }

    #[test]
    fn merge_flat_json_keeps_other_writers_keys() {
        let path =
            std::env::temp_dir().join(format!("dmtcp_bench_merge_{}.json", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        // First writer creates the file.
        merge_flat_json(
            path,
            &[("mg_forked_ratio", 45.0), ("mg_inline_total_s", 3.9)],
        )
        .unwrap();
        // Second writer overwrites one key and appends another; the
        // untouched key must survive.
        merge_flat_json(
            path,
            &[("incr_speedup_ratio", 12.5), ("mg_inline_total_s", 4.0)],
        )
        .unwrap();
        let got = std::fs::read_to_string(path).unwrap();
        std::fs::remove_file(path).unwrap();
        obs::json::validate(&got).expect("valid JSON");
        assert!(got.contains("\"mg_forked_ratio\": 45.000000"));
        assert!(got.contains("\"mg_inline_total_s\": 4.000000"));
        assert!(got.contains("\"incr_speedup_ratio\": 12.500000"));
        // In-place overwrite, not duplicate keys.
        assert_eq!(got.matches("mg_inline_total_s").count(), 1);
    }

    #[test]
    fn jsonl_line_is_valid_json() {
        let r = ExpResult {
            label: "desk\"top".into(),
            ckpt_s: Summary::of(&[0.5, 0.7]),
            restart_s: None,
            image_bytes: 42,
            participants: 2,
            stages: Some(StageBreakdown {
                suspend: 0.01,
                elect: 0.001,
                drain: 0.02,
                write: 0.4,
                refill: 0.002,
            }),
        };
        let line = r.jsonl();
        obs::json::validate(&line).expect("valid JSON");
        assert!(line.contains("\"restart_s\":null"));
        assert!(line.contains("\"write_s\":0.4"));
    }
}
