//! Experiment harness: everything the per-figure binaries share.
//!
//! Each experiment builds a fresh simulated cluster, launches a workload
//! under DMTCP, requests checkpoints, optionally kills and restarts the
//! computation, and reads the coordinator's barrier timings — the same
//! quantities the paper reports. Independent experiment configurations run
//! in parallel on host threads (each owns its own world) through
//! [`run_parallel`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use apps::registry::full_registry;
use dmtcp::coord::{coord_shared, stage, GenStat};
use dmtcp::session::run_for;
use dmtcp::{Options, Session};
use oskit::world::{NodeId, OsSim, World};
use oskit::HwSpec;
use simkit::{Nanos, Sim, Summary};

/// Event budget per phase — generous; a hang is a bug.
pub const EV: u64 = 400_000_000;

/// One experiment's measurements.
#[derive(Debug, Clone)]
pub struct ExpResult {
    /// Label for the output row.
    pub label: String,
    /// Checkpoint wall-clock times (request → stage-5 barrier), seconds.
    pub ckpt_s: Summary,
    /// Restart wall-clock (plan → restart-refill barrier), seconds.
    pub restart_s: Option<f64>,
    /// Aggregate (cluster-wide) image bytes of the last generation.
    pub image_bytes: u64,
    /// Number of checkpointed processes.
    pub participants: u32,
}

impl ExpResult {
    /// Paper-style row: label, ckpt mean±σ, restart, size in MB.
    pub fn row(&self) -> String {
        format!(
            "{:<24} ckpt {:6.2}s ±{:4.2}  restart {:>6}  size {:9.1} MB  ({} procs)",
            self.label,
            self.ckpt_s.mean,
            self.ckpt_s.stddev,
            self.restart_s
                .map(|r| format!("{r:5.2}s"))
                .unwrap_or_else(|| "  n/a".into()),
            self.image_bytes as f64 / (1u64 << 20) as f64,
            self.participants,
        )
    }
}

/// A cluster world ready for experiments.
pub fn cluster_world(nodes: usize) -> (World, OsSim) {
    (
        World::new(HwSpec::cluster(), nodes, full_registry()),
        Sim::new(),
    )
}

/// A desktop world (single 8-core node).
pub fn desktop_world() -> (World, OsSim) {
    (
        World::new(HwSpec::desktop(), 1, full_registry()),
        Sim::new(),
    )
}

/// Standard options: images to the shared store unless `local_disk`.
pub fn options(compression: bool, forked: bool, local_disk: bool) -> Options {
    Options {
        ckpt_dir: if local_disk { "/ckpt".into() } else { "/shared/ckpt".into() },
        compression,
        forked,
        ..Options::default()
    }
}

/// Checkpoint time (request → image-written barrier) in seconds.
pub fn ckpt_seconds(g: &GenStat) -> f64 {
    g.checkpoint_time()
        .expect("generation complete")
        .as_secs_f64()
}

/// Take `reps` checkpoints spaced by `gap`, returning their times and the
/// aggregate image size of the last one.
pub fn measure_checkpoints(
    w: &mut World,
    sim: &mut OsSim,
    s: &Session,
    reps: usize,
    gap: Nanos,
) -> (Vec<f64>, u64, u32) {
    let mut times = Vec::new();
    let mut size = 0;
    let mut parts = 0;
    for _ in 0..reps {
        let g = s.checkpoint_and_wait(w, sim, EV);
        times.push(ckpt_seconds(&g));
        parts = g.participants;
        let images = coord_shared(w).last_images.clone();
        size = images
            .iter()
            .map(|(path, host)| {
                let node = w.resolve(host).expect("host");
                w.fs_for(node, path).size(path).expect("image exists")
            })
            .sum();
        run_for(w, sim, gap);
    }
    (times, size, parts)
}

/// Kill the computation and restart it in place; returns the restart
/// wall-clock in seconds (plan arrival → restart-refill barrier).
pub fn kill_and_measure_restart(w: &mut World, sim: &mut OsSim, s: &Session) -> f64 {
    let gen = Session::last_gen_stat(w).expect("a checkpoint exists").gen;
    s.kill_computation(w, sim);
    let script = Session::parse_restart_script(w);
    let names: Vec<(String, NodeId)> = script
        .iter()
        .map(|(h, _)| (h.clone(), w.resolve(h).expect("host")))
        .collect();
    let remap = move |h: &str| {
        names
            .iter()
            .find(|(n, _)| n == h)
            .map(|(_, x)| *x)
            .expect("host")
    };
    s.restart_from_script(w, sim, &script, &remap, gen);
    Session::wait_restart_done(w, sim, gen, EV);
    let g = coord_shared(w)
        .gen_stats
        .iter()
        .rev()
        .find(|g| g.gen == gen && g.releases.contains_key(&stage::RESTART_REFILLED))
        .expect("restart stats recorded")
        .clone();
    (g.releases[&stage::RESTART_REFILLED] - g.requested_at).as_secs_f64()
}

/// Run independent experiment closures on parallel host threads, preserving
/// input order in the output.
pub fn run_parallel<T: Send>(jobs: Vec<Box<dyn FnOnce() -> T + Send>>) -> Vec<T> {
    let n = jobs.len();
    let (tx, rx) = crossbeam::channel::unbounded();
    std::thread::scope(|scope| {
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            scope.spawn(move || {
                let out = job();
                tx.send((i, out)).expect("collector alive");
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (i, out) in rx.iter() {
        slots[i] = Some(out);
    }
    slots.into_iter().map(|s| s.expect("job finished")).collect()
}

/// Repetition count: figures use the paper's 10 unless `DMTCP_REPS` says
/// otherwise (CI uses fewer).
pub fn reps() -> usize {
    std::env::var("DMTCP_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_parallel_preserves_order() {
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        assert_eq!(run_parallel(jobs), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn row_formatting_is_stable() {
        let r = ExpResult {
            label: "NAS/MG[3]".into(),
            ckpt_s: Summary::of(&[2.0, 2.2, 1.8]),
            restart_s: Some(2.5),
            image_bytes: 1536 << 20,
            participants: 131,
        };
        let row = r.row();
        assert!(row.contains("NAS/MG[3]"));
        assert!(row.contains("1536.0 MB"));
        assert!(row.contains("131 procs"));
    }
}
