//! Criterion micro-benchmarks of the reproduction's moving parts: the szip
//! codec (the real compute cost of simulated checkpoints), image
//! write/restore, the drain/refill protocol, and a whole small-cluster
//! checkpoint cycle. These measure *host* time — how fast the simulator
//! itself runs — complementing the fig*/table1 binaries, which report
//! *virtual* (simulated) time.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use dmtcp::session::run_for;
use dmtcp::{Options, Session};
use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};

fn bench_szip(c: &mut Criterion) {
    let mut g = c.benchmark_group("szip");
    let len = 1 << 20;
    for (name, profile) in [
        ("zeros", FillProfile::Zeros),
        ("text", FillProfile::Text),
        ("code", FillProfile::Code),
        ("random", FillProfile::Random),
    ] {
        let data = profile.bytes(7, len);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(format!("compress/{name}"), |b| {
            b.iter(|| szip::compress(&data))
        });
        let comp = szip::compress(&data);
        g.bench_function(format!("decompress/{name}"), |b| {
            b.iter(|| szip::decompress(&comp).expect("valid"))
        });
    }
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = FillProfile::Code.bytes(3, 1 << 20);
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("1MiB", |b| b.iter(|| szip::crc32(&data)));
    g.finish();
}

struct Holder {
    pc: u8,
    mb: u64,
}
simkit::impl_snap!(struct Holder { pc, mb });
impl Program for Holder {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                k.mmap_synthetic(
                    "data",
                    self.mb << 20,
                    7,
                    FillProfile::Mixed {
                        zero_pct: 30,
                        text_pct: 30,
                        code_pct: 20,
                    },
                );
                self.pc = 1;
                Step::Yield
            }
            _ => Step::Sleep(Nanos::from_millis(5)),
        }
    }
    fn tag(&self) -> &'static str {
        "bench-holder"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<Holder>("bench-holder");
    r
}

fn bench_image_write(c: &mut Criterion) {
    let mut g = c.benchmark_group("mtcp");
    g.sample_size(20);
    g.bench_function("write_image/8MiB-compressed", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(HwSpec::desktop(), 1, registry());
                let mut sim = Sim::new();
                let pid = w.spawn(
                    &mut sim,
                    NodeId(0),
                    "holder",
                    Box::new(Holder { pc: 0, mb: 8 }),
                    Pid(1),
                    Default::default(),
                );
                sim.run_until(&mut w, Nanos::from_millis(2));
                w.suspend_user_threads(&mut sim, pid);
                (w, sim, pid)
            },
            |(mut w, sim, pid)| {
                mtcp::write_image(
                    &mut w,
                    sim.now(),
                    pid,
                    "/img",
                    mtcp::WriteMode::Compressed,
                    pid.0,
                    vec![],
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_full_checkpoint_cycle(c: &mut Criterion) {
    // Host time to simulate a full 2-node distributed checkpoint: measures
    // the DES + protocol machinery end to end.
    let mut g = c.benchmark_group("protocol");
    g.sample_size(10);
    g.bench_function("cluster-checkpoint/2nodes-2procs", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(HwSpec::cluster(), 2, registry());
                let mut sim = Sim::new();
                let s = Session::start(
                    &mut w,
                    &mut sim,
                    Options {
                        ckpt_dir: "/shared/ckpt".into(),
                        ..Options::default()
                    },
                );
                for n in 0..2 {
                    s.launch(
                        &mut w,
                        &mut sim,
                        NodeId(n),
                        "holder",
                        Box::new(Holder { pc: 0, mb: 4 }),
                    );
                }
                run_for(&mut w, &mut sim, Nanos::from_millis(10));
                (w, sim, s)
            },
            |(mut w, mut sim, s)| s.checkpoint_and_wait(&mut w, &mut sim, 10_000_000),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_szip,
    bench_crc,
    bench_image_write,
    bench_full_checkpoint_cycle
);
criterion_main!(benches);
