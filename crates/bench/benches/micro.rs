//! Micro-benchmarks of the reproduction's moving parts: the szip codec
//! (the real compute cost of simulated checkpoints), image write/restore,
//! and a whole small-cluster checkpoint cycle. These measure *host* time —
//! how fast the simulator itself runs — complementing the fig*/table1
//! binaries, which report *virtual* (simulated) time.
//!
//! Hand-rolled harness (`harness = false`): the workspace builds offline,
//! so there is no criterion dependency. Run with
//! `cargo bench -p dmtcp-bench` or filter: `cargo bench -p dmtcp-bench -- szip`.

use dmtcp::session::run_for;
use dmtcp::{ExpectCkpt, Options, Session};
use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap, Summary};
use std::time::Instant;

/// Measure `f` (with a fresh input from `setup` each iteration), printing
/// mean/p50/p90 per-iteration wall time and optional throughput.
fn bench<S, T, R>(name: &str, bytes: Option<u64>, mut setup: impl FnMut() -> S, mut f: T)
where
    T: FnMut(S) -> R,
{
    if !selected(name) {
        return;
    }
    // Warm up, then time iterations until we have enough samples or budget.
    for _ in 0..2 {
        let s = setup();
        std::hint::black_box(f(s));
    }
    let budget = std::time::Duration::from_millis(300);
    let started = Instant::now();
    let mut samples = Vec::new();
    while samples.len() < 200 && (started.elapsed() < budget || samples.len() < 5) {
        let s = setup();
        let t0 = Instant::now();
        std::hint::black_box(f(s));
        samples.push(t0.elapsed().as_secs_f64());
    }
    let sum = Summary::of(&samples);
    let thr = bytes
        .map(|b| format!("  {:8.1} MB/s", b as f64 / sum.mean / (1 << 20) as f64))
        .unwrap_or_default();
    println!(
        "{name:<40} {:>5} iters  mean {:>11}  p50 {:>11}  p90 {:>11}{thr}",
        samples.len(),
        fmt_t(sum.mean),
        fmt_t(sum.p50),
        fmt_t(sum.p90),
    );
}

fn fmt_t(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn selected(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

fn bench_szip() {
    let len = 1usize << 20;
    for (name, profile) in [
        ("zeros", FillProfile::Zeros),
        ("text", FillProfile::Text),
        ("code", FillProfile::Code),
        ("random", FillProfile::Random),
    ] {
        let data = profile.bytes(7, len);
        bench(
            &format!("szip/compress/{name}"),
            Some(len as u64),
            || (),
            |_| szip::compress(&data),
        );
        let comp = szip::compress(&data);
        bench(
            &format!("szip/decompress/{name}"),
            Some(len as u64),
            || (),
            |_| szip::decompress(&comp).expect("valid"),
        );
    }
}

fn bench_crc() {
    let data = FillProfile::Code.bytes(3, 1 << 20);
    bench(
        "crc32/1MiB",
        Some(data.len() as u64),
        || (),
        |_| szip::crc32(&data),
    );
}

struct Holder {
    pc: u8,
    mb: u64,
}
simkit::impl_snap!(struct Holder { pc, mb });
impl Program for Holder {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                k.mmap_synthetic(
                    "data",
                    self.mb << 20,
                    7,
                    FillProfile::Mixed {
                        zero_pct: 30,
                        text_pct: 30,
                        code_pct: 20,
                    },
                );
                self.pc = 1;
                Step::Yield
            }
            _ => Step::Sleep(Nanos::from_millis(5)),
        }
    }
    fn tag(&self) -> &'static str {
        "bench-holder"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<Holder>("bench-holder");
    r
}

fn bench_image_write() {
    bench(
        "mtcp/write_image/8MiB-compressed",
        None,
        || {
            let mut w = World::new(HwSpec::desktop(), 1, registry());
            let mut sim = Sim::new();
            let pid = w.spawn(
                &mut sim,
                NodeId(0),
                "holder",
                Box::new(Holder { pc: 0, mb: 8 }),
                Pid(1),
                Default::default(),
            );
            sim.run_until(&mut w, Nanos::from_millis(2));
            w.suspend_user_threads(&mut sim, pid);
            (w, sim, pid)
        },
        |(mut w, sim, pid)| {
            mtcp::write_image(
                &mut w,
                sim.now(),
                pid,
                "/img",
                mtcp::WriteMode::Compressed,
                pid.0,
                vec![],
            )
        },
    );
}

fn bench_full_checkpoint_cycle() {
    // Host time to simulate a full 2-node distributed checkpoint: measures
    // the DES + protocol machinery end to end.
    bench(
        "protocol/cluster-checkpoint/2nodes-2procs",
        None,
        || {
            let mut w = World::new(HwSpec::cluster(), 2, registry());
            let mut sim = Sim::new();
            let s = Session::start(
                &mut w,
                &mut sim,
                Options::builder().ckpt_dir("/shared/ckpt").build(),
            );
            for n in 0..2 {
                s.launch(
                    &mut w,
                    &mut sim,
                    NodeId(n),
                    "holder",
                    Box::new(Holder { pc: 0, mb: 4 }),
                );
            }
            run_for(&mut w, &mut sim, Nanos::from_millis(10));
            (w, sim, s)
        },
        |(mut w, mut sim, s)| {
            s.checkpoint_and_wait(&mut w, &mut sim, 10_000_000)
                .expect_ckpt()
        },
    );
}

fn main() {
    println!("# host-time micro-benchmarks (hand-rolled harness)");
    bench_szip();
    bench_crc();
    bench_image_write();
    bench_full_checkpoint_cycle();
}
