//! The checkpoint image format.
//!
//! An image file is a [`oskit::fs::Blob`] laid out as:
//!
//! ```text
//! [ real chunk:  IMAGE_MAGIC · header_len varint · snap(CkptImage) ]
//! [ per-region payloads, in region-table order:
//!     StoredAs::Real      → real chunk of (possibly szip'd) bytes
//!     StoredAs::Shared    → real chunk of (possibly szip'd) bytes
//!     StoredAs::Synthetic → virtual chunk of comp_len bytes           ]
//! ```
//!
//! Synthetic payloads are "written" as virtual extents: the file records
//! their exact on-disk size (computed by really compressing the generated
//! stream, or a documented 1 MiB sample of it for very large regions) but
//! the simulation host never materializes them. Real application state is
//! always stored — and verified on restore — byte for byte.

use oskit::mem::{FillProfile, RegionKind};
use oskit::proc::{SigAction, ThreadCtx};
use simkit::{impl_snap, Snap, SnapReader, SnapWriter};

/// Magic prefix of image files.
pub const IMAGE_MAGIC: &[u8; 8] = b"MTCPIMG1";

/// Why a header failed to parse. Distinguishing truncation from corruption
/// matters to the restart path: a truncated image is a torn write (fall back
/// to the previous generation), a bad CRC is bit rot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// The bytes end before the header does (torn write).
    Truncated,
    /// The magic prefix is wrong — this is not an image file.
    BadMagic,
    /// The header checksum does not match its contents.
    BadCrc,
    /// Structurally invalid header despite a matching checksum.
    Malformed,
}

impl std::fmt::Display for HeaderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderError::Truncated => write!(f, "image header truncated"),
            HeaderError::BadMagic => write!(f, "bad image magic"),
            HeaderError::BadCrc => write!(f, "image header CRC mismatch"),
            HeaderError::Malformed => write!(f, "malformed image header"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// How a region's payload is stored in the image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoredAs {
    /// Real bytes follow in the payload area (szip'd when the image is
    /// compressed).
    Real {
        /// Stored payload size in bytes.
        comp_len: u64,
    },
    /// A shared-memory segment's bytes follow, with the backing path
    /// recorded for the §4.5 restore rules.
    Shared {
        /// Backing file path.
        backing: String,
        /// Stored payload size in bytes.
        comp_len: u64,
    },
    /// Synthetic recipe; the payload is a virtual extent of `comp_len`.
    Synthetic {
        /// Generator seed.
        seed: u64,
        /// Fill profile.
        profile: FillProfile,
        /// Stored payload size in bytes.
        comp_len: u64,
        /// Whether `comp_len` came from sampled extrapolation.
        sampled: bool,
    },
}

impl_snap!(enum StoredAs {
    Real { comp_len },
    Shared { backing, comp_len },
    Synthetic { seed, profile, comp_len, sampled },
});

/// Region table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMeta {
    /// Mapping name.
    pub name: String,
    /// Region kind.
    pub kind: RegionKind,
    /// Protection bits.
    pub prot: u8,
    /// Uncompressed length.
    pub raw_len: u64,
    /// Payload representation.
    pub stored: StoredAs,
    /// CRC-32 of the raw bytes (0 for synthetic — their identity is the
    /// recipe).
    pub crc: u32,
}

impl_snap!(struct RegionMeta { name, kind, prot, raw_len, stored, crc });

/// The image header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptImage {
    /// Original (virtual) pid of the checkpointed process.
    pub vpid: u32,
    /// Command name.
    pub cmd: String,
    /// Environment.
    pub env: Vec<(String, String)>,
    /// Captured thread contexts (registers/stack analogue).
    pub threads: Vec<ThreadCtx>,
    /// Region table.
    pub regions: Vec<RegionMeta>,
    /// Signal dispositions.
    pub sig_actions: Vec<(u8, SigAction)>,
    /// Whether payloads are szip-compressed.
    pub compressed: bool,
    /// Opaque upper-layer (DMTCP) metadata: the connection-information
    /// table, virtual-pid map, pty state. MTCP never interprets it.
    pub dmtcp_meta: Vec<u8>,
}

impl_snap!(struct CkptImage {
    vpid, cmd, env, threads, regions, sig_actions, compressed, dmtcp_meta
});

impl CkptImage {
    /// Serialize the header (magic + length-prefixed snap bytes + CRC-32 of
    /// the snap body, so torn or bit-flipped headers are detected before the
    /// region table is trusted).
    pub fn encode_header(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        self.save(&mut w);
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(body.len() + 20);
        out.extend_from_slice(IMAGE_MAGIC);
        let mut lenw = SnapWriter::new();
        lenw.put_varint(body.len() as u64);
        out.extend_from_slice(&lenw.into_bytes());
        out.extend_from_slice(&body);
        out.extend_from_slice(&szip::crc32(&body).to_le_bytes());
        out
    }

    /// Parse a header from the front of `bytes`; returns the image and the
    /// number of bytes consumed.
    pub fn decode_header(bytes: &[u8]) -> Result<(CkptImage, usize), HeaderError> {
        if bytes.len() < IMAGE_MAGIC.len() {
            return Err(HeaderError::Truncated);
        }
        if &bytes[..IMAGE_MAGIC.len()] != IMAGE_MAGIC {
            return Err(HeaderError::BadMagic);
        }
        let mut r = SnapReader::new(&bytes[IMAGE_MAGIC.len()..]);
        let body_len = r.get_varint().map_err(|_| HeaderError::Truncated)? as usize;
        let varint_bytes = (bytes.len() - IMAGE_MAGIC.len()) - r.remaining();
        let body = r.get_raw(body_len).map_err(|_| HeaderError::Truncated)?;
        let crc = r.get_raw(4).map_err(|_| HeaderError::Truncated)?;
        let stored = u32::from_le_bytes(crc.try_into().expect("4 bytes"));
        if szip::crc32(body) != stored {
            return Err(HeaderError::BadCrc);
        }
        let img = CkptImage::from_snap_bytes(body).map_err(|_| HeaderError::Malformed)?;
        Ok((img, IMAGE_MAGIC.len() + varint_bytes + body_len + 4))
    }

    /// Total stored payload bytes (the image file size minus the header).
    pub fn payload_len(&self) -> u64 {
        self.regions
            .iter()
            .map(|r| match &r.stored {
                StoredAs::Real { comp_len } => *comp_len,
                StoredAs::Shared { comp_len, .. } => *comp_len,
                StoredAs::Synthetic { comp_len, .. } => *comp_len,
            })
            .sum()
    }

    /// Total raw (uncompressed) bytes of the address space.
    pub fn raw_len(&self) -> u64 {
        self.regions.iter().map(|r| r.raw_len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_image() -> CkptImage {
        CkptImage {
            vpid: 1234,
            cmd: "octave".into(),
            env: vec![("DMTCP_COORD".into(), "node00:7779".into())],
            threads: vec![ThreadCtx {
                tag: "worker".into(),
                state: vec![9, 9],
                user: true,
                blocked: false,
            }],
            regions: vec![
                RegionMeta {
                    name: "heap".into(),
                    kind: RegionKind::Heap,
                    prot: 3,
                    raw_len: 4096,
                    stored: StoredAs::Real { comp_len: 812 },
                    crc: 0xDEADBEEF,
                },
                RegionMeta {
                    name: "ballast".into(),
                    kind: RegionKind::Anon,
                    prot: 1,
                    raw_len: 1 << 30,
                    stored: StoredAs::Synthetic {
                        seed: 7,
                        profile: FillProfile::Text,
                        comp_len: 200 << 20,
                        sampled: true,
                    },
                    crc: 0,
                },
            ],
            sig_actions: vec![(15, SigAction::Handler)],
            compressed: true,
            dmtcp_meta: vec![1, 2, 3],
        }
    }

    #[test]
    fn header_roundtrip() {
        let img = sample_image();
        let enc = img.encode_header();
        let (back, used) = CkptImage::decode_header(&enc).unwrap();
        assert_eq!(back, img);
        assert_eq!(used, enc.len());
    }

    #[test]
    fn header_roundtrip_with_trailing_payload() {
        let img = sample_image();
        let mut enc = img.encode_header();
        let hdr_len = enc.len();
        enc.extend_from_slice(&[0xAB; 100]); // payload bytes follow
        let (back, used) = CkptImage::decode_header(&enc).unwrap();
        assert_eq!(back, img);
        assert_eq!(used, hdr_len);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            CkptImage::decode_header(b"NOTANIMG........"),
            Err(HeaderError::BadMagic)
        );
        assert_eq!(CkptImage::decode_header(b""), Err(HeaderError::Truncated));
    }

    #[test]
    fn truncated_header_rejected() {
        let enc = sample_image().encode_header();
        for cut in [8, 9, enc.len() / 2, enc.len() - 1] {
            assert_eq!(
                CkptImage::decode_header(&enc[..cut]),
                Err(HeaderError::Truncated),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn bit_flipped_header_fails_crc() {
        let enc = sample_image().encode_header();
        // Flip one bit in every body byte position in turn; all must be
        // caught by the header CRC (magic/length corruption is caught by the
        // magic check or truncation instead).
        for pos in [10, enc.len() / 2, enc.len() - 5] {
            let mut bad = enc.clone();
            bad[pos] ^= 0x10;
            assert!(
                matches!(
                    CkptImage::decode_header(&bad),
                    Err(HeaderError::BadCrc) | Err(HeaderError::Truncated)
                ),
                "pos {pos}"
            );
        }
    }

    #[test]
    fn size_accounting() {
        let img = sample_image();
        assert_eq!(img.payload_len(), 812 + (200 << 20));
        assert_eq!(img.raw_len(), 4096 + (1 << 30));
    }
}
