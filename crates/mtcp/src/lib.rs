//! `mtcp` — MultiThreaded CheckPointing, the lower layer of the paper's
//! two-layer design (§4.1).
//!
//! MTCP owns *single-process* checkpointing: it captures a process's address
//! space and thread contexts into an image file, and restores them. It knows
//! nothing about sockets, coordinators, or other processes — that is the
//! DMTCP layer's job, which drives MTCP through the small API in this crate
//! (`write_image` / `read_image` / `restore_into`), mirroring the "separate
//! layers with a small API between them" structure the paper credits for
//! maintainability.
//!
//! Images are written through the real [`szip`] compressor when compression
//! is on (the paper's default, via gzip), with a per-region CRC-32 so
//! restore can prove bit-identical reconstruction. Forked checkpointing
//! (§5.3, Table 1) exploits the simulated kernel's copy-on-write `fork`:
//! the parent is blocked only for the COW setup while a child does the
//! compression and I/O in the background.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod incr;
pub mod reader;
pub mod store;
pub mod writer;

pub use image::{CkptImage, HeaderError, RegionMeta, StoredAs, IMAGE_MAGIC};
pub use incr::{IncrState, RegionRec};
pub use reader::{read_image, restore_into, verify_image, ImageError, RestoreError, RestoreReport};
pub use store::{ImageStore, ResolvedImage, SinkCommit};
pub use writer::{
    begin_forked_write, write_image, write_image_full, ForkedWrite, WriteMode, WriteReport,
};
