//! Pluggable image sink/source.
//!
//! By default MTCP commits images as plain files in the target filesystem
//! and resolves them back by path. A storage subsystem (the `ckptstore`
//! crate) can interpose here: the *sink* receives every fully built image
//! blob (fault hooks already applied) and persists it however it likes —
//! chunked, deduplicated, replicated — reporting the physical bytes written
//! and when the image is durable; the *source* resolves an image path back
//! to a blob, possibly assembling it from chunks held by a peer node when
//! the primary copy is gone.
//!
//! The hooks live in a `World` ext slot so neither `mtcp` nor `core` needs
//! a dependency on the store implementation; with no hooks installed the
//! behavior is byte-identical to the plain-file path.

use oskit::fs::Blob;
use oskit::world::{NodeId, World};
use simkit::Nanos;
use std::rc::Rc;

/// `World::ext_slots` key holding the installed [`StoreHooks`].
pub const SLOT: &str = "mtcp-image-store";

/// What a sink reports after committing an image.
#[derive(Debug, Clone, Copy)]
pub struct SinkCommit {
    /// Physical bytes that actually reached storage (after dedup; excludes
    /// replica copies, which the sink accounts separately).
    pub stored_bytes: u64,
    /// When the image — manifest, new chunks, and any synchronous replica
    /// traffic — is durable and the checkpoint may be declared complete.
    pub io_done: Nanos,
}

/// Consumes a built image blob at `work_start` on `node` under the logical
/// image `path` and persists it, charging its own storage/network time.
pub type ImageSink = Rc<dyn Fn(&mut World, Nanos, NodeId, &str, &Blob) -> SinkCommit>;

/// An image blob resolved by a source.
#[derive(Debug, Clone)]
pub struct ResolvedImage {
    /// The reassembled image, byte-equal to what the sink was given.
    pub blob: Blob,
    /// The node whose store supplied the bytes, when it was not the reader
    /// itself — the reader charges a network fetch on top of the local read.
    pub fetched_from: Option<NodeId>,
}

/// Resolves a logical image path for a reader on `node`, returning `None`
/// when no store (local or replica) holds the image.
pub type ImageSource = Rc<dyn Fn(&World, NodeId, &str) -> Option<ResolvedImage>>;

/// The pair of hooks a store installs.
#[derive(Clone)]
pub struct StoreHooks {
    /// Image commit path.
    pub sink: ImageSink,
    /// Image resolution path.
    pub source: ImageSource,
}

/// Install store hooks (replacing any previous ones).
pub fn install(w: &mut World, hooks: StoreHooks) {
    w.ext_slots.insert(SLOT.to_string(), Box::new(hooks));
}

/// Remove the store hooks; MTCP reverts to plain-file images.
pub fn uninstall(w: &mut World) {
    w.ext_slots.remove(SLOT);
}

/// The installed hooks, if any (cloned out so callers can use them while
/// mutating the world).
pub fn hooks(w: &World) -> Option<StoreHooks> {
    w.ext_slots
        .get(SLOT)
        .and_then(|b| b.downcast_ref::<StoreHooks>())
        .cloned()
}
