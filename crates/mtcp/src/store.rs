//! Pluggable image storage — the [`ImageStore`] extension point.
//!
//! By default MTCP commits images as plain files in the target filesystem
//! and resolves them back by path. A storage subsystem (the `ckptstore`
//! crate is one implementation) can interpose by installing an
//! [`ImageStore`] trait object: its *commit* side receives every fully
//! built image blob (fault hooks already applied) and persists it however
//! it likes — chunked, deduplicated, replicated — reporting the physical
//! bytes written and when the image is durable; its *resolve* side turns
//! an image path back into a blob, possibly assembling it from chunks held
//! by a peer node when the primary copy is gone.
//!
//! The store lives in a `World` ext slot so neither `mtcp` nor `core`
//! needs a dependency on the implementation; with no store installed the
//! behavior is byte-identical to the plain-file path. This is the
//! plugin-model shape: one documented trait, installed and removed at
//! runtime, instead of a pair of ad-hoc function pointers.

use oskit::fs::Blob;
use oskit::world::{NodeId, World};
use simkit::Nanos;
use std::rc::Rc;

/// `World::ext_slots` key holding the installed [`ImageStore`].
pub const SLOT: &str = "mtcp-image-store";

/// What a store reports after committing an image.
#[derive(Debug, Clone, Copy)]
pub struct SinkCommit {
    /// Physical bytes that actually reached storage (after dedup; excludes
    /// replica copies, which the store accounts separately).
    pub stored_bytes: u64,
    /// When the image — manifest, new chunks, and any synchronous replica
    /// traffic — is durable and the checkpoint may be declared complete.
    pub io_done: Nanos,
}

/// An image blob resolved by a store.
#[derive(Debug, Clone)]
pub struct ResolvedImage {
    /// The reassembled image, byte-equal to what the store was given.
    pub blob: Blob,
    /// The node whose store supplied the bytes, when it was not the reader
    /// itself — the reader charges a network fetch on top of the local read.
    pub fetched_from: Option<NodeId>,
}

/// A checkpoint-image storage backend.
///
/// Implementations are installed with [`install`] and removed with
/// [`uninstall`]; while installed, every image MTCP writes goes through
/// [`ImageStore::commit`] instead of the plain-file path, and every image
/// read tries [`ImageStore::resolve`] when the plain file is absent.
/// Implementations charge their own storage/network time against the
/// world, exactly as the built-in plain-file path does.
pub trait ImageStore {
    /// Persist a built image blob, produced at `work_start` on `node`
    /// under the logical image `path`. Returns what was stored and when
    /// it is durable.
    fn commit(
        &self,
        w: &mut World,
        work_start: Nanos,
        node: NodeId,
        path: &str,
        blob: &Blob,
    ) -> SinkCommit;

    /// Resolve a logical image path for a reader on `node`, returning
    /// `None` when the store (local or any replica) does not hold it.
    fn resolve(&self, w: &World, node: NodeId, path: &str) -> Option<ResolvedImage>;

    /// Whether a new commit from `node` may carry *alias extents* — virtual
    /// chunks (see `mtcp::incr`) naming byte ranges of the already-stored
    /// image `prev_path`. Returns that image's logical byte length when it
    /// can; any alias extent must lie entirely below this bound (a torn
    /// prior image shrinks it, forcing the tail back onto the full path).
    /// The default store (plain files) cannot alias.
    fn alias_bound(&self, _w: &World, _node: NodeId, _prev_path: &str) -> Option<u64> {
        None
    }
}

/// Install an image store (replacing any previous one).
pub fn install(w: &mut World, store: Rc<dyn ImageStore>) {
    w.ext_slots.insert(SLOT.to_string(), Box::new(store));
}

/// Remove the image store; MTCP reverts to plain-file images.
pub fn uninstall(w: &mut World) {
    w.ext_slots.remove(SLOT);
}

/// The installed store, if any (cloned out so callers can use it while
/// mutating the world).
pub fn installed(w: &World) -> Option<Rc<dyn ImageStore>> {
    w.ext_slots
        .get(SLOT)
        .and_then(|b| b.downcast_ref::<Rc<dyn ImageStore>>())
        .cloned()
}
