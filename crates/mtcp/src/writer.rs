//! Checkpoint image writing.
//!
//! `write_image` runs at a single virtual instant (user threads are already
//! suspended by the caller), produces the image file in the target
//! filesystem, and *charges* the time the work would take — compression on
//! a CPU core, bytes through the disk/SAN/NFS path — returning when each
//! part completes so the checkpoint-manager thread can sleep until then.
//!
//! `begin_forked_write` is the asynchronous variant: it snapshots the
//! address space via a region-granularity COW fork, commits the image from
//! the frozen snapshot, and returns a [`ForkedWrite`] handle the manager
//! holds while the application keeps running. The handle keeps the snapshot
//! alive so application writes during the in-flight checkpoint are charged
//! as COW copies; `ForkedWrite::finish` collects that dirty ledger once the
//! image is durable, and `ForkedWrite::abort` rolls the incremental
//! baseline back when the generation dies mid-drain.
//!
//! ## Incremental captures
//!
//! At generation N ≥ 2, when the address space has an armed dirty-region
//! set, a previous compressed capture left an [`incr::IncrState`], and the
//! installed [`crate::store::ImageStore`] can alias the prior image
//! ([`crate::store::ImageStore::alias_bound`]), only mutated regions are
//! read, compressed, and hashed. Clean regions are emitted as *alias
//! extents* — virtual payloads naming a byte range of the previous image —
//! with their `RegionMeta` rebuilt from the cached CRC and compressed
//! length (sound because szip is deterministic). Everything else — no
//! store, store can't alias, uncompressed mode, first generation, freshly
//! restored process — falls back to the full path, which also arms dirty
//! tracking so the *next* generation can go incremental.

use crate::image::{CkptImage, RegionMeta, StoredAs, IMAGE_MAGIC};
use crate::incr::{self, IncrState, RegionRec};
use oskit::fs::Blob;
use oskit::mem::{AddressSpace, Content, CowStats, RegionId};
use oskit::proc::{ThreadCtx, ThreadState};
use oskit::world::{Pid, World};
use simkit::{Nanos, Snap, SnapWriter};
use std::collections::BTreeSet;
use szip::SizeEstimator;

/// How the image is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write raw payloads.
    Uncompressed,
    /// Pipe payloads through szip (the paper's gzip default).
    Compressed,
    /// Forked checkpointing: a COW child compresses and writes in the
    /// background; the parent is blocked only for the fork itself.
    ForkedCompressed,
}

impl WriteMode {
    /// Whether payloads go through the compressor.
    pub fn compressed(self) -> bool {
        !matches!(self, WriteMode::Uncompressed)
    }
}

/// Completion report.
#[derive(Debug, Clone, Copy)]
pub struct WriteReport {
    /// When the checkpointed process may resume (for forked mode this is
    /// just after the COW fork; otherwise when the image is fully written).
    pub resume_at: Nanos,
    /// When the image file is completely on storage.
    pub image_complete_at: Nanos,
    /// Total image file size in bytes.
    pub image_bytes: u64,
    /// Total raw address-space bytes captured.
    pub raw_bytes: u64,
    /// Raw bytes actually read + compressed + hashed by this capture
    /// (equal to `raw_bytes` for a full capture, the dirty subset for an
    /// incremental one).
    pub captured_raw_bytes: u64,
    /// Whether this was an incremental (alias-extent) capture.
    pub incremental: bool,
}

/// An in-flight forked (background) checkpoint write.
///
/// Returned by [`begin_forked_write`]. The embedded snapshot is the COW
/// child's view of memory: holding it keeps every still-shared region's
/// `Rc` count above one, which is exactly what makes application writes
/// during the overlapped drain detectable (and chargeable) as copies.
#[derive(Debug)]
pub struct ForkedWrite {
    /// Timing/size report; `resume_at` is fork-only, `image_complete_at`
    /// is when the background compress+write pipeline drains.
    pub report: WriteReport,
    /// The frozen COW snapshot (kept alive until `finish`).
    snapshot: AddressSpace,
    /// Incremental baseline for the *next* generation; committed only once
    /// this image is durable (CKPT_WRITTEN), discarded on abort.
    pending: Pending,
    /// The dirty set consumed by this capture; merged back into the live
    /// address space on abort so the next incremental capture stays
    /// relative to the last durable image.
    taken: Option<BTreeSet<RegionId>>,
}

impl ForkedWrite {
    /// The background pipeline is done and the image is durable: drop the
    /// COW snapshot, close the live process's dirty ledger, record the COW
    /// tax as metrics, and commit the incremental baseline so the next
    /// generation can alias this image. Returns the ledger (zeros when the
    /// process died while the write was in flight).
    pub fn finish(self, w: &mut World, pid: Pid) -> CowStats {
        self.close(w, pid, true)
    }

    /// The generation died mid-drain: the image never became durable, so
    /// the incremental baseline stays at the previous generation. Merges
    /// the consumed dirty set back into the live address space (regions
    /// this capture "cleaned" are still dirty relative to the last durable
    /// image) and discards the pending state.
    pub fn abort(self, w: &mut World, pid: Pid) -> CowStats {
        self.close(w, pid, false)
    }

    fn close(self, w: &mut World, pid: Pid, durable: bool) -> CowStats {
        let stats = match w.procs.get_mut(&pid) {
            Some(p) => {
                let stats = p.mem.end_cow_snapshot();
                if !durable {
                    if let Some(taken) = self.taken {
                        p.mem.merge_dirty(taken);
                    }
                }
                stats
            }
            None => CowStats::default(),
        };
        drop(self.snapshot);
        if durable {
            self.pending.apply(w, pid);
        }
        if stats.copied_bytes > 0 {
            w.obs
                .metrics
                .add("mtcp.cow.dirty_bytes", 0, stats.copied_bytes);
            w.obs
                .metrics
                .add("mtcp.cow.dirty_regions", 0, stats.copied_regions);
        }
        stats
    }
}

/// What should happen to the process's incremental baseline once the
/// written image is durable.
#[derive(Debug)]
enum Pending {
    /// Replace the baseline with this capture's state.
    Commit(IncrState),
    /// The dirty set was consumed but this image cannot be aliased
    /// (uncompressed): drop the baseline so a later generation cannot
    /// alias a stale image.
    Clear,
    /// Leave the baseline untouched (shadow full captures).
    Keep,
}

impl Pending {
    fn apply(self, w: &mut World, pid: Pid) {
        match self {
            Pending::Commit(state) => incr::commit_state(w, pid, state),
            Pending::Clear => incr::clear_state(w, pid),
            Pending::Keep => {}
        }
    }
}

/// How a capture was planned.
enum Plan {
    /// Capture every region. `taken` holds a consumed dirty set (when
    /// tracking was armed but incremental was not possible this time).
    Full { taken: Option<BTreeSet<RegionId>> },
    /// Capture dirty regions; alias the rest into `prev` below `bound`.
    Incr {
        dirty: BTreeSet<RegionId>,
        prev: IncrState,
        bound: u64,
    },
    /// Shadow full capture: touch neither the dirty set nor the baseline.
    Shadow,
}

/// Decide full vs incremental and arm/consume the dirty set accordingly.
fn plan_capture(w: &mut World, pid: Pid, mode: WriteMode, force_full: bool) -> Plan {
    if force_full {
        return Plan::Shadow;
    }
    let node = w.procs[&pid].node;
    let allow = mode.compressed() && incr::enabled(w);
    let prev = incr::state_of(w, pid);
    let bound = match (&prev, crate::store::installed(w)) {
        (Some(st), Some(store)) if allow => store.alias_bound(w, node, &st.prev_path),
        _ => None,
    };
    let mem = &mut w.procs.get_mut(&pid).expect("capture of live process").mem;
    let taken = mem.take_dirty();
    if taken.is_none() {
        // First capture of this address space: arm tracking so the next
        // generation can go incremental against the image we write now.
        mem.enable_dirty_tracking();
    }
    match (taken, prev, bound) {
        (Some(dirty), Some(prev), Some(bound)) => Plan::Incr { dirty, prev, bound },
        (taken, _, _) => Plan::Full { taken },
    }
}

/// Capture `pid`'s address space and threads into `path`.
///
/// The caller (DMTCP's checkpoint manager) guarantees user threads are
/// suspended. `dmtcp_meta` is the upper layer's connection-information
/// table, stored opaquely. Goes incremental automatically when possible
/// (see module docs); the image is durable when this returns, so the
/// incremental baseline is committed before returning.
pub fn write_image(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    mode: WriteMode,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
) -> WriteReport {
    let plan = plan_capture(w, pid, mode, false);
    let cap = {
        let p = &w.procs[&pid];
        capture_planned(&p.mem, mode.compressed(), &plan)
    };
    let (report, state) = commit_image(w, now, pid, path, mode, vpid, dmtcp_meta, cap);
    pending_for(&plan, mode, state).apply(w, pid);
    report
}

/// Capture a *full* image of `pid` at this instant without consuming the
/// dirty set or moving the incremental baseline. This is the differential
/// test hook: called next to [`write_image`] on the same suspended process
/// it produces the full-image ground truth an incremental image must
/// restore identically to. Production code never calls it.
pub fn write_image_full(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    mode: WriteMode,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
) -> WriteReport {
    let plan = Plan::Shadow;
    let cap = {
        let p = &w.procs[&pid];
        capture_planned(&p.mem, mode.compressed(), &plan)
    };
    let (report, _) = commit_image(w, now, pid, path, mode, vpid, dmtcp_meta, cap);
    report
}

/// Start a forked checkpoint of `pid`: COW-snapshot the address space,
/// commit the image from the frozen snapshot, and arm the live side's
/// dirty ledger. The returned report's `resume_at` covers only the fork
/// pause; the caller resumes the application there and sleeps (in the
/// manager thread) until `image_complete_at` before calling
/// [`ForkedWrite::finish`] (or [`ForkedWrite::abort`] if the generation
/// dies first).
pub fn begin_forked_write(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
) -> ForkedWrite {
    // Plan against the *live* address space before forking: take_dirty and
    // the COW snapshot happen at the same suspended instant, so the dirty
    // set describes exactly the snapshot the image is built from.
    let plan = plan_capture(w, pid, WriteMode::ForkedCompressed, false);
    let snapshot = w
        .procs
        .get_mut(&pid)
        .expect("forked write of live process")
        .mem
        .begin_cow_snapshot();
    // Build payloads from the *snapshot*: the application may dirty its own
    // copy the moment it resumes, but the image must hold pre-fork bytes.
    let cap = capture_planned(&snapshot, true, &plan);
    let (report, state) = commit_image(
        w,
        now,
        pid,
        path,
        WriteMode::ForkedCompressed,
        vpid,
        dmtcp_meta,
        cap,
    );
    let pending = pending_for(&plan, WriteMode::ForkedCompressed, state);
    let taken = match plan {
        Plan::Full { taken } => taken,
        Plan::Incr { dirty, .. } => Some(dirty),
        Plan::Shadow => None,
    };
    ForkedWrite {
        report,
        snapshot,
        pending,
        taken,
    }
}

/// The baseline outcome for a capture under `plan`.
fn pending_for(plan: &Plan, mode: WriteMode, state: IncrState) -> Pending {
    match plan {
        Plan::Shadow => Pending::Keep,
        _ if mode.compressed() => Pending::Commit(state),
        _ => Pending::Clear,
    }
}

/// Everything phase 1 produces: the region table, payload streams, and the
/// byte accounting the cost model and metrics need.
struct CaptureOut {
    /// Live region ids, parallel to `regions`/`payloads`.
    ids: Vec<RegionId>,
    regions: Vec<RegionMeta>,
    payloads: Vec<Payload>,
    /// Total raw address-space bytes the image represents.
    raw_bytes: u64,
    /// Raw bytes actually read + compressed + hashed by this capture.
    captured_raw_bytes: u64,
    /// Compressor input/output bytes (freshly packed regions only).
    comp_in: u64,
    comp_out: u64,
    /// Regions emitted as alias extents.
    aliased_regions: u64,
    incremental: bool,
}

/// Phase 1: build the region table and payload byte streams under `plan`.
/// (Pure data work on a frozen address space; timing charged at commit.)
fn capture_planned(mem: &AddressSpace, compressed: bool, plan: &Plan) -> CaptureOut {
    let estimator = SizeEstimator::default();
    let mut out = CaptureOut {
        ids: Vec::new(),
        regions: Vec::new(),
        payloads: Vec::new(),
        raw_bytes: 0,
        captured_raw_bytes: 0,
        comp_in: 0,
        comp_out: 0,
        aliased_regions: 0,
        incremental: matches!(plan, Plan::Incr { .. }),
    };
    for (id, region) in mem.iter() {
        let raw_len = region.len();
        out.raw_bytes += raw_len;
        out.ids.push(id);
        if let Plan::Incr { dirty, prev, bound } = plan {
            if let Some((meta, payload)) = alias_region(id, region, raw_len, dirty, prev, *bound) {
                out.aliased_regions += 1;
                out.regions.push(meta);
                out.payloads.push(payload);
                continue;
            }
        }
        out.captured_raw_bytes += raw_len;
        let (meta, payload, packed) = capture_one(region, raw_len, compressed, &estimator);
        if let Some(stored_len) = packed {
            out.comp_in += raw_len;
            out.comp_out += stored_len;
        }
        out.regions.push(meta);
        out.payloads.push(payload);
    }
    out
}

/// Emit `region` as a clean alias extent when the previous capture's record
/// still describes it exactly; `None` sends it down the full path.
fn alias_region(
    id: RegionId,
    region: &oskit::mem::Region,
    raw_len: u64,
    dirty: &BTreeSet<RegionId>,
    prev: &IncrState,
    bound: u64,
) -> Option<(RegionMeta, Payload)> {
    if dirty.contains(&id) {
        return None;
    }
    let rec = prev.regions.get(&id)?;
    if rec.raw_len != raw_len {
        return None;
    }
    match (&region.content, &rec.stored) {
        (Content::Real(_), StoredAs::Real { comp_len }) => {
            // The raw bytes are unchanged since the previous capture, so the
            // previous compressed payload (szip is deterministic) and CRC
            // still describe them; reference those bytes instead of
            // recompressing them.
            if rec.payload_off + comp_len > bound {
                return None;
            }
            let meta = RegionMeta {
                name: region.name.clone(),
                kind: region.kind.clone(),
                prot: region.prot,
                raw_len,
                stored: rec.stored.clone(),
                crc: rec.crc,
            };
            let payload = Payload::Virtual {
                len: *comp_len,
                meta: incr::encode_alias(&prev.prev_path, rec.payload_off, *comp_len),
            };
            Some((meta, payload))
        }
        // Synthetic regions are immutable; reuse the previous recipe (and
        // its estimated compressed size) without re-running the estimator.
        // The virtual chunk dedups in the store by identity, so no alias
        // extent is needed.
        (Content::Synthetic { .. }, StoredAs::Synthetic { comp_len, .. }) => {
            let mut meta_bytes = SnapWriter::new();
            rec.stored.save(&mut meta_bytes);
            let meta = RegionMeta {
                name: region.name.clone(),
                kind: region.kind.clone(),
                prot: region.prot,
                raw_len,
                stored: rec.stored.clone(),
                crc: 0,
            };
            let payload = Payload::Virtual {
                len: *comp_len,
                meta: meta_bytes.into_bytes(),
            };
            Some((meta, payload))
        }
        // MAP_SHARED segments can be written through *another* process's
        // address space without marking our dirty set — never alias them.
        _ => None,
    }
}

/// Capture one region the full way. Returns the meta, the payload, and the
/// stored length when the compressor actually ran on real bytes.
fn capture_one(
    region: &oskit::mem::Region,
    raw_len: u64,
    compressed: bool,
    estimator: &SizeEstimator,
) -> (RegionMeta, Payload, Option<u64>) {
    match &region.content {
        Content::Real(bytes) => {
            let (stored_bytes, crc) = pack_real(bytes, compressed);
            let stored_len = stored_bytes.len() as u64;
            (
                RegionMeta {
                    name: region.name.clone(),
                    kind: region.kind.clone(),
                    prot: region.prot,
                    raw_len,
                    stored: StoredAs::Real {
                        comp_len: stored_len,
                    },
                    crc,
                },
                Payload::Real(stored_bytes),
                compressed.then_some(stored_len),
            )
        }
        Content::Shared(seg) => {
            // Shared segments are materialized eagerly at this instant
            // (the fork instant, for a forked write): MAP_SHARED memory
            // is not COW under fork, so the image carries whatever the
            // segment held when the snapshot was taken.
            let bytes = seg.borrow();
            let (stored_bytes, crc) = pack_real(&bytes, compressed);
            let stored_len = stored_bytes.len() as u64;
            let backing = match &region.kind {
                oskit::mem::RegionKind::Shm { backing } => backing.clone(),
                _ => String::new(),
            };
            (
                RegionMeta {
                    name: region.name.clone(),
                    kind: region.kind.clone(),
                    prot: region.prot,
                    raw_len,
                    stored: StoredAs::Shared {
                        backing,
                        comp_len: stored_len,
                    },
                    crc,
                },
                Payload::Real(stored_bytes),
                compressed.then_some(stored_len),
            )
        }
        Content::Synthetic { seed, len, profile } => {
            let (comp_len, sampled) = if !compressed {
                (*len, false)
            } else if estimator.should_sample(*len) {
                let sample = profile.bytes(*seed, estimator.sample_len as usize);
                let sample_comp = szip::compressed_len(&sample);
                (
                    estimator.extrapolate(*len, sample.len() as u64, sample_comp),
                    true,
                )
            } else {
                (
                    szip::compressed_len(&profile.bytes(*seed, *len as usize)),
                    false,
                )
            };
            let stored = StoredAs::Synthetic {
                seed: *seed,
                profile: *profile,
                comp_len,
                sampled,
            };
            // The virtual chunk's meta carries the recipe so a
            // reader could re-derive it from the file alone.
            let mut meta = SnapWriter::new();
            stored.save(&mut meta);
            (
                RegionMeta {
                    name: region.name.clone(),
                    kind: region.kind.clone(),
                    prot: region.prot,
                    raw_len,
                    stored,
                    crc: 0,
                },
                Payload::Virtual {
                    len: comp_len,
                    meta: meta.into_bytes(),
                },
                compressed.then_some(comp_len),
            )
        }
    }
}

/// Phases 2–4: thread contexts, file materialization, commit + time
/// charging, and observability. Also returns the [`IncrState`] describing
/// this image, for the caller to commit once the image is durable.
#[allow(clippy::too_many_arguments)]
fn commit_image(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    mode: WriteMode,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
    cap: CaptureOut,
) -> (WriteReport, IncrState) {
    let node = w.procs[&pid].node;
    let CaptureOut {
        ids,
        regions,
        payloads,
        raw_bytes,
        captured_raw_bytes,
        comp_in,
        comp_out,
        aliased_regions,
        incremental,
    } = cap;

    // ---- Phase 2: thread contexts (registers/stack analogue). ----
    let threads: Vec<ThreadCtx> = {
        let p = &w.procs[&pid];
        p.threads
            .iter()
            .filter(|t| t.user && t.state != ThreadState::Exited)
            .map(|t| ThreadCtx {
                tag: t.program.tag().to_string(),
                state: t.program.save(),
                user: true,
                blocked: t.state == ThreadState::Blocked,
            })
            .collect()
    };

    let header = {
        let p = &w.procs[&pid];
        CkptImage {
            vpid,
            cmd: p.cmd.clone(),
            env: p.env.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            threads,
            regions,
            sig_actions: p.sig_actions.iter().map(|(s, a)| (*s, *a)).collect(),
            compressed: mode.compressed(),
            dmtcp_meta,
        }
    };

    // ---- Phase 3: materialize the file. ----
    let header_bytes = header.encode_header();
    let header_len = header_bytes.len() as u64;
    let mut blob = Blob::new();
    blob.append_bytes(&header_bytes);
    for p in &payloads {
        match p {
            Payload::Real(bytes) => blob.append_bytes(bytes),
            Payload::Virtual { len, meta } => blob.append_virtual(*len, meta.clone()),
        }
    }
    // The incremental baseline for the *next* generation: where each
    // region's payload landed in this image, plus the cached CRC and
    // stored form a clean region can be re-emitted from.
    let state = {
        let mut st = IncrState {
            prev_path: path.to_string(),
            regions: std::collections::BTreeMap::new(),
        };
        let mut off = header_len;
        for (i, id) in ids.iter().enumerate() {
            let r = &header.regions[i];
            st.regions.insert(
                *id,
                RegionRec {
                    raw_len: r.raw_len,
                    crc: r.crc,
                    stored: r.stored.clone(),
                    payload_off: off,
                },
            );
            off += match &payloads[i] {
                Payload::Real(bytes) => bytes.len() as u64,
                Payload::Virtual { len, .. } => *len,
            };
        }
        st
    };
    // Fault-injection hook: a torn write truncates or bit-flips the blob
    // between "bytes produced" and "file committed" — the CRC/length checks
    // on the read side must catch whatever happens here. For a forked write
    // this models a crash mid-way through the background commit.
    w.apply_image_fault(now, path, &mut blob);
    let image_bytes = blob.len();

    // ---- Phase 4: commit and charge time. ----
    let spec = w.spec.clone();
    let fork_cost = spec.fork_time(raw_bytes);
    let (work_start, fork_pause) = match mode {
        WriteMode::ForkedCompressed => (now + fork_cost, fork_cost),
        _ => (now, Nanos::ZERO),
    };
    // Compression occupies one core of the node (gzip is single-threaded
    // per process; concurrent processes use distinct cores via the pool).
    // An incremental capture only ran the compressor over the dirty bytes.
    let cpu_done = if mode.compressed() {
        let dur = spec.gzip_time(captured_raw_bytes);
        let (_s, e) = w.nodes[node.0 as usize].cpu.run(work_start, dur);
        e
    } else {
        work_start + spec.memcpy_time(raw_bytes)
    };
    // Commit goes through the pluggable `ImageStore` when one is installed
    // (content-addressed, deduplicated, replicated) and charges only its
    // physical traffic; otherwise the blob lands as a plain file. Either
    // way the file goes out behind the compressor; model the pipeline as
    // overlap: I/O completes no earlier than compression, charged from
    // work_start so disk contention with other processes is respected.
    let io_done = if let Some(store) = crate::store::installed(w) {
        store.commit(w, work_start, node, path, &blob).io_done
    } else {
        {
            let fs = w.fs_for_mut(node, path);
            fs.create(path).expect("checkpoint directory writable");
            let f = fs.get_mut(path).expect("file just created");
            f.blob = blob;
        }
        w.charge_storage_write(work_start, node, path, image_bytes)
    };
    let image_complete_at = cpu_done.max(io_done);
    let resume_at = match mode {
        WriteMode::ForkedCompressed => now + fork_pause,
        _ => image_complete_at,
    };

    // ---- Observability: per-segment sizes, compression totals, span. ----
    {
        for r in &header.regions {
            let stored_len = match &r.stored {
                StoredAs::Real { comp_len } => *comp_len,
                StoredAs::Shared { comp_len, .. } => *comp_len,
                StoredAs::Synthetic { comp_len, .. } => *comp_len,
            };
            w.obs.metrics.observe("mtcp.segment.bytes", 0, stored_len);
        }
        w.obs.metrics.add("mtcp.image.bytes", 0, image_bytes);
        w.obs.metrics.add("mtcp.image.raw_bytes", 0, raw_bytes);
        if incremental {
            w.obs.metrics.add("mtcp.dirty_bytes", 0, captured_raw_bytes);
            w.obs.metrics.add("mtcp.incr.images", 0, 1);
            w.obs
                .metrics
                .add("mtcp.incr.aliased_regions", 0, aliased_regions);
        }
        if comp_in > 0 {
            w.obs.metrics.add("szip.bytes_in", 0, comp_in);
            w.obs.metrics.add("szip.bytes_out", 0, comp_out);
            w.obs
                .metrics
                .set_gauge("szip.ratio", vpid as u64, comp_out as f64 / comp_in as f64);
        }
        w.obs.spans.complete(
            obs::TrackId::new(node.0, vpid, 0),
            "mtcp.write",
            "mtcp",
            now,
            image_complete_at,
            vec![
                ("image_bytes", image_bytes),
                ("raw_bytes", raw_bytes),
                ("captured_raw_bytes", captured_raw_bytes),
            ],
        );
    }

    (
        WriteReport {
            resume_at,
            image_complete_at,
            image_bytes,
            raw_bytes,
            captured_raw_bytes,
            incremental,
        },
        state,
    )
}

enum Payload {
    Real(Vec<u8>),
    Virtual { len: u64, meta: Vec<u8> },
}

/// Compress (or pass through) real bytes and compute their CRC.
fn pack_real(bytes: &[u8], compress: bool) -> (Vec<u8>, u32) {
    let crc = szip::crc32(bytes);
    let stored = if compress {
        szip::compress(bytes)
    } else {
        bytes.to_vec()
    };
    (stored, crc)
}

/// Verify a blob starts with an image header (restart scripts sanity-check
/// files before launching restarters).
pub fn looks_like_image(blob_head: &[u8]) -> bool {
    blob_head.len() >= IMAGE_MAGIC.len() && &blob_head[..IMAGE_MAGIC.len()] == IMAGE_MAGIC
}
