//! Checkpoint image writing.
//!
//! `write_image` runs at a single virtual instant (user threads are already
//! suspended by the caller), produces the image file in the target
//! filesystem, and *charges* the time the work would take — compression on
//! a CPU core, bytes through the disk/SAN/NFS path — returning when each
//! part completes so the checkpoint-manager thread can sleep until then.
//!
//! `begin_forked_write` is the asynchronous variant: it snapshots the
//! address space via a region-granularity COW fork, commits the image from
//! the frozen snapshot, and returns a [`ForkedWrite`] handle the manager
//! holds while the application keeps running. The handle keeps the snapshot
//! alive so application writes during the in-flight checkpoint are charged
//! as COW copies; `ForkedWrite::finish` collects that dirty ledger once the
//! image is durable.

use crate::image::{CkptImage, RegionMeta, StoredAs, IMAGE_MAGIC};
use oskit::fs::Blob;
use oskit::mem::{AddressSpace, Content, CowStats};
use oskit::proc::{ThreadCtx, ThreadState};
use oskit::world::{Pid, World};
use simkit::{Nanos, Snap, SnapWriter};
use szip::SizeEstimator;

/// How the image is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write raw payloads.
    Uncompressed,
    /// Pipe payloads through szip (the paper's gzip default).
    Compressed,
    /// Forked checkpointing: a COW child compresses and writes in the
    /// background; the parent is blocked only for the fork itself.
    ForkedCompressed,
}

impl WriteMode {
    /// Whether payloads go through the compressor.
    pub fn compressed(self) -> bool {
        !matches!(self, WriteMode::Uncompressed)
    }
}

/// Completion report.
#[derive(Debug, Clone, Copy)]
pub struct WriteReport {
    /// When the checkpointed process may resume (for forked mode this is
    /// just after the COW fork; otherwise when the image is fully written).
    pub resume_at: Nanos,
    /// When the image file is completely on storage.
    pub image_complete_at: Nanos,
    /// Total image file size in bytes.
    pub image_bytes: u64,
    /// Total raw address-space bytes captured.
    pub raw_bytes: u64,
}

/// An in-flight forked (background) checkpoint write.
///
/// Returned by [`begin_forked_write`]. The embedded snapshot is the COW
/// child's view of memory: holding it keeps every still-shared region's
/// `Rc` count above one, which is exactly what makes application writes
/// during the overlapped drain detectable (and chargeable) as copies.
#[derive(Debug)]
pub struct ForkedWrite {
    /// Timing/size report; `resume_at` is fork-only, `image_complete_at`
    /// is when the background compress+write pipeline drains.
    pub report: WriteReport,
    /// The frozen COW snapshot (kept alive until `finish`).
    snapshot: AddressSpace,
}

impl ForkedWrite {
    /// The background pipeline is done and the image is durable: drop the
    /// COW snapshot, close the live process's dirty ledger, and record the
    /// COW tax as metrics. Returns the ledger (zeros when the process died
    /// while the write was in flight).
    pub fn finish(self, w: &mut World, pid: Pid) -> CowStats {
        let stats = match w.procs.get_mut(&pid) {
            Some(p) => p.mem.end_cow_snapshot(),
            None => CowStats::default(),
        };
        drop(self.snapshot);
        if stats.copied_bytes > 0 {
            w.obs
                .metrics
                .add("mtcp.cow.dirty_bytes", 0, stats.copied_bytes);
            w.obs
                .metrics
                .add("mtcp.cow.dirty_regions", 0, stats.copied_regions);
        }
        stats
    }
}

/// Capture `pid`'s address space and threads into `path`.
///
/// The caller (DMTCP's checkpoint manager) guarantees user threads are
/// suspended. `dmtcp_meta` is the upper layer's connection-information
/// table, stored opaquely.
pub fn write_image(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    mode: WriteMode,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
) -> WriteReport {
    let (regions, payloads, raw_bytes) = {
        let p = &w.procs[&pid];
        capture_regions(&p.mem, mode.compressed())
    };
    commit_image(
        w, now, pid, path, mode, vpid, dmtcp_meta, regions, payloads, raw_bytes,
    )
}

/// Start a forked checkpoint of `pid`: COW-snapshot the address space,
/// commit the image from the frozen snapshot, and arm the live side's
/// dirty ledger. The returned report's `resume_at` covers only the fork
/// pause; the caller resumes the application there and sleeps (in the
/// manager thread) until `image_complete_at` before calling
/// [`ForkedWrite::finish`].
pub fn begin_forked_write(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
) -> ForkedWrite {
    let snapshot = w
        .procs
        .get_mut(&pid)
        .expect("forked write of live process")
        .mem
        .begin_cow_snapshot();
    // Build payloads from the *snapshot*: the application may dirty its own
    // copy the moment it resumes, but the image must hold pre-fork bytes.
    let (regions, payloads, raw_bytes) = capture_regions(&snapshot, true);
    let report = commit_image(
        w,
        now,
        pid,
        path,
        WriteMode::ForkedCompressed,
        vpid,
        dmtcp_meta,
        regions,
        payloads,
        raw_bytes,
    );
    ForkedWrite { report, snapshot }
}

/// Phase 1: build the region table and payload byte streams.
/// (Pure data work on a frozen address space; timing charged at commit.)
fn capture_regions(mem: &AddressSpace, compressed: bool) -> (Vec<RegionMeta>, Vec<Payload>, u64) {
    let estimator = SizeEstimator::default();
    let mut regions = Vec::new();
    let mut payloads: Vec<Payload> = Vec::new();
    let mut raw_bytes = 0u64;
    for (_, region) in mem.iter() {
        let raw_len = region.len();
        raw_bytes += raw_len;
        match &region.content {
            Content::Real(bytes) => {
                let (stored_bytes, crc) = pack_real(bytes, compressed);
                regions.push(RegionMeta {
                    name: region.name.clone(),
                    kind: region.kind.clone(),
                    prot: region.prot,
                    raw_len,
                    stored: StoredAs::Real {
                        comp_len: stored_bytes.len() as u64,
                    },
                    crc,
                });
                payloads.push(Payload::Real(stored_bytes));
            }
            Content::Shared(seg) => {
                // Shared segments are materialized eagerly at this instant
                // (the fork instant, for a forked write): MAP_SHARED memory
                // is not COW under fork, so the image carries whatever the
                // segment held when the snapshot was taken.
                let bytes = seg.borrow();
                let (stored_bytes, crc) = pack_real(&bytes, compressed);
                let backing = match &region.kind {
                    oskit::mem::RegionKind::Shm { backing } => backing.clone(),
                    _ => String::new(),
                };
                regions.push(RegionMeta {
                    name: region.name.clone(),
                    kind: region.kind.clone(),
                    prot: region.prot,
                    raw_len,
                    stored: StoredAs::Shared {
                        backing,
                        comp_len: stored_bytes.len() as u64,
                    },
                    crc,
                });
                payloads.push(Payload::Real(stored_bytes));
            }
            Content::Synthetic { seed, len, profile } => {
                let (comp_len, sampled) = if !compressed {
                    (*len, false)
                } else if estimator.should_sample(*len) {
                    let sample = profile.bytes(*seed, estimator.sample_len as usize);
                    let sample_comp = szip::compressed_len(&sample);
                    (
                        estimator.extrapolate(*len, sample.len() as u64, sample_comp),
                        true,
                    )
                } else {
                    (
                        szip::compressed_len(&profile.bytes(*seed, *len as usize)),
                        false,
                    )
                };
                let stored = StoredAs::Synthetic {
                    seed: *seed,
                    profile: *profile,
                    comp_len,
                    sampled,
                };
                // The virtual chunk's meta carries the recipe so a
                // reader could re-derive it from the file alone.
                let mut meta = SnapWriter::new();
                stored.save(&mut meta);
                regions.push(RegionMeta {
                    name: region.name.clone(),
                    kind: region.kind.clone(),
                    prot: region.prot,
                    raw_len,
                    stored,
                    crc: 0,
                });
                payloads.push(Payload::Virtual {
                    len: comp_len,
                    meta: meta.into_bytes(),
                });
            }
        }
    }
    (regions, payloads, raw_bytes)
}

/// Phases 2–4: thread contexts, file materialization, commit + time
/// charging, and observability.
#[allow(clippy::too_many_arguments)]
fn commit_image(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    path: &str,
    mode: WriteMode,
    vpid: u32,
    dmtcp_meta: Vec<u8>,
    regions: Vec<RegionMeta>,
    payloads: Vec<Payload>,
    raw_bytes: u64,
) -> WriteReport {
    let node = w.procs[&pid].node;

    // ---- Phase 2: thread contexts (registers/stack analogue). ----
    let threads: Vec<ThreadCtx> = {
        let p = &w.procs[&pid];
        p.threads
            .iter()
            .filter(|t| t.user && t.state != ThreadState::Exited)
            .map(|t| ThreadCtx {
                tag: t.program.tag().to_string(),
                state: t.program.save(),
                user: true,
                blocked: t.state == ThreadState::Blocked,
            })
            .collect()
    };

    let header = {
        let p = &w.procs[&pid];
        CkptImage {
            vpid,
            cmd: p.cmd.clone(),
            env: p.env.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            threads,
            regions,
            sig_actions: p.sig_actions.iter().map(|(s, a)| (*s, *a)).collect(),
            compressed: mode.compressed(),
            dmtcp_meta,
        }
    };

    // ---- Phase 3: materialize the file. ----
    let mut blob = Blob::new();
    blob.append_bytes(&header.encode_header());
    for p in &payloads {
        match p {
            Payload::Real(bytes) => blob.append_bytes(bytes),
            Payload::Virtual { len, meta } => blob.append_virtual(*len, meta.clone()),
        }
    }
    // Fault-injection hook: a torn write truncates or bit-flips the blob
    // between "bytes produced" and "file committed" — the CRC/length checks
    // on the read side must catch whatever happens here. For a forked write
    // this models a crash mid-way through the background commit.
    w.apply_image_fault(now, path, &mut blob);
    let image_bytes = blob.len();

    // ---- Phase 4: commit and charge time. ----
    let spec = w.spec.clone();
    let fork_cost = spec.fork_time(raw_bytes);
    let (work_start, fork_pause) = match mode {
        WriteMode::ForkedCompressed => (now + fork_cost, fork_cost),
        _ => (now, Nanos::ZERO),
    };
    // Compression occupies one core of the node (gzip is single-threaded
    // per process; concurrent processes use distinct cores via the pool).
    let cpu_done = if mode.compressed() {
        let dur = spec.gzip_time(raw_bytes);
        let (_s, e) = w.nodes[node.0 as usize].cpu.run(work_start, dur);
        e
    } else {
        work_start + spec.memcpy_time(raw_bytes)
    };
    // Commit goes through the pluggable `ImageStore` when one is installed
    // (content-addressed, deduplicated, replicated) and charges only its
    // physical traffic; otherwise the blob lands as a plain file. Either
    // way the file goes out behind the compressor; model the pipeline as
    // overlap: I/O completes no earlier than compression, charged from
    // work_start so disk contention with other processes is respected.
    let io_done = if let Some(store) = crate::store::installed(w) {
        store.commit(w, work_start, node, path, &blob).io_done
    } else {
        {
            let fs = w.fs_for_mut(node, path);
            fs.create(path).expect("checkpoint directory writable");
            let f = fs.get_mut(path).expect("file just created");
            f.blob = blob;
        }
        w.charge_storage_write(work_start, node, path, image_bytes)
    };
    let image_complete_at = cpu_done.max(io_done);
    let resume_at = match mode {
        WriteMode::ForkedCompressed => now + fork_pause,
        _ => image_complete_at,
    };

    // ---- Observability: per-segment sizes, compression totals, span. ----
    {
        let mut comp_in = 0u64;
        let mut comp_out = 0u64;
        for r in &header.regions {
            let stored_len = match &r.stored {
                StoredAs::Real { comp_len } => *comp_len,
                StoredAs::Shared { comp_len, .. } => *comp_len,
                StoredAs::Synthetic { comp_len, .. } => *comp_len,
            };
            w.obs.metrics.observe("mtcp.segment.bytes", 0, stored_len);
            if mode.compressed() {
                comp_in += r.raw_len;
                comp_out += stored_len;
            }
        }
        w.obs.metrics.add("mtcp.image.bytes", 0, image_bytes);
        w.obs.metrics.add("mtcp.image.raw_bytes", 0, raw_bytes);
        if comp_in > 0 {
            w.obs.metrics.add("szip.bytes_in", 0, comp_in);
            w.obs.metrics.add("szip.bytes_out", 0, comp_out);
            w.obs
                .metrics
                .set_gauge("szip.ratio", vpid as u64, comp_out as f64 / comp_in as f64);
        }
        w.obs.spans.complete(
            obs::TrackId::new(node.0, vpid, 0),
            "mtcp.write",
            "mtcp",
            now,
            image_complete_at,
            vec![("image_bytes", image_bytes), ("raw_bytes", raw_bytes)],
        );
    }

    WriteReport {
        resume_at,
        image_complete_at,
        image_bytes,
        raw_bytes,
    }
}

enum Payload {
    Real(Vec<u8>),
    Virtual { len: u64, meta: Vec<u8> },
}

/// Compress (or pass through) real bytes and compute their CRC.
fn pack_real(bytes: &[u8], compress: bool) -> (Vec<u8>, u32) {
    let crc = szip::crc32(bytes);
    let stored = if compress {
        szip::compress(bytes)
    } else {
        bytes.to_vec()
    };
    (stored, crc)
}

/// Verify a blob starts with an image header (restart scripts sanity-check
/// files before launching restarters).
pub fn looks_like_image(blob_head: &[u8]) -> bool {
    blob_head.len() >= IMAGE_MAGIC.len() && &blob_head[..IMAGE_MAGIC.len()] == IMAGE_MAGIC
}
