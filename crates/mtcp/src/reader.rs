//! Checkpoint image reading and process restoration.
//!
//! `read_image` parses the header out of an image file; `restore_into`
//! rebuilds a process's address space and threads inside an existing
//! (freshly created) process shell — the DMTCP restart program creates that
//! shell, restores fds/sockets around it, and then calls down into MTCP,
//! matching Figure 2 step 5 ("restore memory and threads").

use crate::image::{CkptImage, HeaderError, StoredAs};
use oskit::fs::{Blob, Chunk};
use oskit::mem::{Content, RegionKind};
use oskit::proc::ThreadState;
use oskit::world::{NodeId, Pid, World};
use simkit::Nanos;
use std::cell::RefCell;
use std::rc::Rc;

/// Errors surfaced while reading or restoring an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The image file does not exist.
    NotFound,
    /// The file is not an MTCP image or its header is truncated/corrupt
    /// (the inner [`HeaderError`] says which).
    BadHeader(HeaderError),
    /// A region payload is truncated or failed to decompress.
    BadPayload(String),
    /// A restored region's bytes do not match the recorded CRC.
    CrcMismatch {
        /// Region name.
        region: String,
        /// Index of the region in the image's region table.
        index: usize,
        /// Byte offset of the region's payload within the image file.
        offset: u64,
    },
    /// A thread's program tag has no loader in the registry.
    UnknownProgram(String),
}

/// The satellite-facing name: errors from validating/reading an image file
/// (truncated, bad magic, bad CRC, …).
pub type ImageError = RestoreError;

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::NotFound => write!(f, "image file not found"),
            RestoreError::BadHeader(e) => write!(f, "not a valid MTCP image: {e}"),
            RestoreError::BadPayload(r) => write!(f, "corrupt payload for region {r}"),
            RestoreError::CrcMismatch {
                region,
                index,
                offset,
            } => {
                write!(
                    f,
                    "CRC mismatch restoring region {region} (index {index}, payload at byte {offset})"
                )
            }
            RestoreError::UnknownProgram(t) => write!(f, "no program loader for tag {t}"),
        }
    }
}

impl std::error::Error for RestoreError {}

/// Timing of a completed restore.
#[derive(Debug, Clone, Copy)]
pub struct RestoreReport {
    /// When memory and threads are fully restored.
    pub done_at: Nanos,
    /// Image file size read.
    pub image_bytes: u64,
    /// Raw bytes reconstructed.
    pub raw_bytes: u64,
}

/// Resolve the blob behind an image path: the plain file when present,
/// otherwise whatever an installed store source can reassemble — from the
/// reader's own store or a replica node's. Returns the blob plus the remote
/// node that served it, if any, so callers can charge the network fetch.
fn resolve_blob(
    w: &World,
    node: NodeId,
    path: &str,
) -> Result<(Blob, Option<NodeId>), RestoreError> {
    if let Some(f) = w.fs_for(node, path).get(path) {
        return Ok((f.blob.clone(), None));
    }
    if let Some(store) = crate::store::installed(w) {
        if let Some(r) = store.resolve(w, node, path) {
            let remote = r.fetched_from.filter(|n| *n != node);
            return Ok((r.blob, remote));
        }
    }
    Err(RestoreError::NotFound)
}

/// Parse the image header from `path` on `node`'s view of the filesystem
/// (or from an installed store, when the plain file is gone).
pub fn read_image(w: &World, node: NodeId, path: &str) -> Result<CkptImage, RestoreError> {
    let (blob, _) = resolve_blob(w, node, path)?;
    // The header always lives at the front of the first real chunk.
    let head = match blob.chunks().first() {
        Some(Chunk::Real(bytes)) => bytes,
        _ => return Err(RestoreError::BadHeader(HeaderError::Truncated)),
    };
    let (img, _) = CkptImage::decode_header(head).map_err(RestoreError::BadHeader)?;
    Ok(img)
}

/// Fully validate an image without restoring it: header magic/CRC, then
/// every region payload walked, length-checked, decompressed, and verified
/// against its recorded CRC. This is what the restart path runs before
/// trusting an image — a torn or bit-flipped generation is rejected here
/// with a typed error so restart can fall back to an older one.
pub fn verify_image(w: &World, node: NodeId, path: &str) -> Result<CkptImage, ImageError> {
    let (blob, _) = resolve_blob(w, node, path)?;
    let mut cursor = BlobCursor::new(blob.chunks());
    let head = cursor
        .peek_real()
        .ok_or(RestoreError::BadHeader(HeaderError::Truncated))?;
    let (img, header_len) = CkptImage::decode_header(head).map_err(RestoreError::BadHeader)?;
    cursor.skip_real(header_len);
    let mut payload_off = header_len as u64;
    for (index, rm) in img.regions.iter().enumerate() {
        match &rm.stored {
            StoredAs::Real { comp_len } | StoredAs::Shared { comp_len, .. } => {
                let stored = cursor
                    .take_real(*comp_len as usize)
                    .ok_or_else(|| RestoreError::BadPayload(rm.name.clone()))?;
                let raw = unpack_real(&stored, img.compressed)
                    .map_err(|_| RestoreError::BadPayload(rm.name.clone()))?;
                if szip::crc32(&raw) != rm.crc {
                    return Err(RestoreError::CrcMismatch {
                        region: rm.name.clone(),
                        index,
                        offset: payload_off,
                    });
                }
                payload_off += *comp_len;
            }
            StoredAs::Synthetic { comp_len, .. } => {
                cursor
                    .take_virtual(*comp_len)
                    .ok_or_else(|| RestoreError::BadPayload(rm.name.clone()))?;
                payload_off += *comp_len;
            }
        }
    }
    Ok(img)
}

/// Restore memory, signal state, and threads of `img` into the existing
/// process `pid` (its current regions/threads are replaced). Returns timing.
///
/// Shared-memory regions follow the paper's §4.5 rules against the *target*
/// world: recreate a missing backing file when the directory is writable;
/// overwrite the live segment when the file is writable; otherwise map the
/// file's current data instead of the checkpointed bytes.
pub fn restore_into(
    w: &mut World,
    now: Nanos,
    pid: Pid,
    node: NodeId,
    path: &str,
    img: &CkptImage,
) -> Result<RestoreReport, RestoreError> {
    // Walk payload chunks in lockstep with the region table.
    let (blob, fetched_from) = resolve_blob(w, node, path)?;
    let image_bytes = blob.len();
    let payload_owned = blob.chunks().to_vec();
    let mut cursor = BlobCursor::new(&payload_owned);
    // Skip the header bytes within the first chunk.
    let head = cursor
        .peek_real()
        .ok_or(RestoreError::BadHeader(HeaderError::Truncated))?;
    let (_, header_len) = CkptImage::decode_header(head).map_err(RestoreError::BadHeader)?;
    cursor.skip_real(header_len);

    let mut new_mem = oskit::mem::AddressSpace::new();
    let mut raw_bytes = 0u64;
    let mut payload_off = header_len as u64;
    for (index, rm) in img.regions.iter().enumerate() {
        raw_bytes += rm.raw_len;
        let region_off = payload_off;
        payload_off += match &rm.stored {
            StoredAs::Real { comp_len } => *comp_len,
            StoredAs::Shared { comp_len, .. } => *comp_len,
            StoredAs::Synthetic { comp_len, .. } => *comp_len,
        };
        match &rm.stored {
            StoredAs::Real { comp_len } => {
                let stored = cursor
                    .take_real(*comp_len as usize)
                    .ok_or_else(|| RestoreError::BadPayload(rm.name.clone()))?;
                let raw = unpack_real(&stored, img.compressed)
                    .map_err(|_| RestoreError::BadPayload(rm.name.clone()))?;
                if szip::crc32(&raw) != rm.crc {
                    return Err(RestoreError::CrcMismatch {
                        region: rm.name.clone(),
                        index,
                        offset: region_off,
                    });
                }
                new_mem.map(
                    rm.name.clone(),
                    rm.kind.clone(),
                    rm.prot,
                    Content::Real(Rc::new(raw)),
                );
            }
            StoredAs::Shared { backing, comp_len } => {
                let stored = cursor
                    .take_real(*comp_len as usize)
                    .ok_or_else(|| RestoreError::BadPayload(rm.name.clone()))?;
                let raw = unpack_real(&stored, img.compressed)
                    .map_err(|_| RestoreError::BadPayload(rm.name.clone()))?;
                if szip::crc32(&raw) != rm.crc {
                    return Err(RestoreError::CrcMismatch {
                        region: rm.name.clone(),
                        index,
                        offset: region_off,
                    });
                }
                let seg = restore_shared_segment(w, node, backing, raw);
                new_mem.map(
                    rm.name.clone(),
                    RegionKind::Shm {
                        backing: backing.clone(),
                    },
                    rm.prot,
                    Content::Shared(seg),
                );
            }
            StoredAs::Synthetic {
                seed,
                profile,
                comp_len,
                ..
            } => {
                cursor
                    .take_virtual(*comp_len)
                    .ok_or_else(|| RestoreError::BadPayload(rm.name.clone()))?;
                new_mem.map(
                    rm.name.clone(),
                    rm.kind.clone(),
                    rm.prot,
                    Content::Synthetic {
                        seed: *seed,
                        len: rm.raw_len,
                        profile: *profile,
                    },
                );
            }
        }
    }

    // Rebuild threads through the registry (must happen before we borrow
    // the process mutably, since the registry lives on the world).
    let mut new_threads = Vec::new();
    for t in &img.threads {
        let prog = w
            .registry
            .load(&t.tag, &t.state)
            .map_err(|_| RestoreError::UnknownProgram(t.tag.clone()))?;
        new_threads.push(prog);
    }

    {
        let p = w
            .procs
            .get_mut(&pid)
            .expect("restore target process exists");
        p.mem = new_mem;
        p.cmd = img.cmd.clone();
        p.env = img.env.iter().cloned().collect();
        p.sig_actions = img.sig_actions.iter().map(|(s, a)| (*s, *a)).collect();
        // Replace user threads with the restored ones; manager threads (the
        // restarter's own) are left alone.
        p.threads.retain(|t| !t.user);
        for prog in new_threads {
            p.add_thread(prog, true);
        }
        // Restored user threads must not run until the DMTCP layer finishes
        // the refill stage; it resumes them explicitly.
        p.user_suspended = true;
        for t in &mut p.threads {
            if t.user {
                t.state = ThreadState::Runnable;
            }
        }
    }

    // Charge time: read the image, decompress, copy into place. When a
    // store source pulled the bytes off a replica node, the fetch also
    // crosses the network: the replica's NIC plus one propagation delay.
    let spec = w.spec.clone();
    let mut io_done = w.charge_storage_read(now, node, path, image_bytes);
    if let Some(remote) = fetched_from {
        let net_done =
            w.nodes[remote.0 as usize].nic_tx.transfer(now, image_bytes) + spec.net_latency;
        io_done = io_done.max(net_done);
        w.obs
            .metrics
            .add("ckptstore.replica_fetch_bytes", node.0 as u64, image_bytes);
    }
    let cpu_done = if img.compressed {
        let (_s, e) = w.nodes[node.0 as usize]
            .cpu
            .run(now, spec.gunzip_time(raw_bytes));
        e
    } else {
        now + spec.memcpy_time(raw_bytes)
    };
    let done_at = io_done.max(cpu_done);
    w.obs.metrics.add("mtcp.restore.bytes", 0, image_bytes);
    w.obs.spans.complete(
        obs::TrackId::new(node.0, img.vpid, 0),
        "mtcp.restore",
        "mtcp",
        now,
        done_at,
        vec![("image_bytes", image_bytes), ("raw_bytes", raw_bytes)],
    );
    Ok(RestoreReport {
        done_at,
        image_bytes,
        raw_bytes,
    })
}

/// §4.5 shared-memory restore rules, against the current world state.
fn restore_shared_segment(
    w: &mut World,
    node: NodeId,
    backing: &str,
    ckpt_data: Vec<u8>,
) -> Rc<RefCell<Vec<u8>>> {
    let key = (node, backing.to_string());
    if let Some(seg) = w.shm_segs.get(&key) {
        // Another restored process on this host already re-created the
        // segment; both write the same data (same checkpoint), so aliasing
        // is safe — exactly the paper's argument.
        return seg.clone();
    }
    let fs = w.fs_for_mut(node, backing);
    let file_exists = fs.exists(backing);
    let file_writable = fs.get(backing).map(|f| f.writable).unwrap_or(false);
    let dir_writable = fs.dir_writable(backing);
    let data = if !file_exists && dir_writable {
        // Backing file missing and we may create it: recreate, use ckpt data.
        fs.create(backing).expect("dir checked writable");
        let f = fs.get_mut(backing).expect("file just created");
        f.blob = oskit::fs::Blob::from_bytes(ckpt_data.clone());
        ckpt_data
    } else if file_exists && file_writable {
        // Overwrite with checkpoint data.
        let f = fs.get_mut(backing).expect("file exists");
        f.blob = oskit::fs::Blob::from_bytes(ckpt_data.clone());
        ckpt_data
    } else if file_exists {
        // Read-only (system-wide data): map the file's *current* contents.
        fs.read_all(backing).unwrap_or(ckpt_data)
    } else {
        // No file and nowhere to create it: fall back to ckpt bytes in an
        // anonymous segment.
        ckpt_data
    };
    let seg = Rc::new(RefCell::new(data));
    w.shm_segs.insert(key, seg.clone());
    seg
}

fn unpack_real(stored: &[u8], compressed: bool) -> Result<Vec<u8>, ()> {
    if compressed {
        szip::decompress(stored).map_err(|_| ())
    } else {
        Ok(stored.to_vec())
    }
}

/// Walks a blob's chunks, consuming real bytes and virtual extents.
struct BlobCursor<'a> {
    chunks: &'a [Chunk],
    idx: usize,
    offset: usize, // within a real chunk
}

impl<'a> BlobCursor<'a> {
    fn new(chunks: &'a [Chunk]) -> Self {
        BlobCursor {
            chunks,
            idx: 0,
            offset: 0,
        }
    }

    fn peek_real(&self) -> Option<&'a [u8]> {
        match self.chunks.get(self.idx)? {
            Chunk::Real(b) => Some(&b[self.offset..]),
            Chunk::Virtual { .. } => None,
        }
    }

    fn skip_real(&mut self, n: usize) {
        self.offset += n;
        self.normalize();
    }

    fn take_real(&mut self, n: usize) -> Option<Vec<u8>> {
        let b = self.peek_real()?;
        if b.len() < n {
            return None;
        }
        let out = b[..n].to_vec();
        self.skip_real(n);
        Some(out)
    }

    fn take_virtual(&mut self, expect_len: u64) -> Option<()> {
        match self.chunks.get(self.idx)? {
            Chunk::Virtual { len, .. } if *len == expect_len => {
                self.idx += 1;
                self.offset = 0;
                Some(())
            }
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while let Some(Chunk::Real(b)) = self.chunks.get(self.idx) {
            if self.offset >= b.len() {
                self.offset -= b.len();
                self.idx += 1;
            } else {
                break;
            }
        }
    }
}
