//! Incremental (dirty-region) checkpoint state.
//!
//! At generation N ≥ 2 the writer consults two things: the address space's
//! dirty-region set (armed by the first capture, maintained by
//! `oskit::mem`), and the [`IncrState`] cached here from the previous
//! generation's capture — per-region CRCs, stored sizes, and payload
//! offsets within the prior image file. A region that is not dirty is
//! emitted without being read, compressed, or hashed again: its
//! [`crate::image::RegionMeta`] is rebuilt from the cache (valid because
//! szip is deterministic — same raw bytes, same compressed bytes) and its
//! payload becomes an *alias extent*, a virtual chunk whose metadata names
//! a byte range of the previous image. The installed
//! [`crate::store::ImageStore`] resolves alias extents into references to
//! chunks it already holds; the plain-file path never sees one (with no
//! store, or a store that cannot alias, the writer falls back to a full
//! capture).
//!
//! ## Lifecycle — reset at CKPT_WRITTEN, not REFILLED
//!
//! The dirty set taken at capture time is *pending* until the image is
//! durable. An inline write is durable when `write_image` returns, so the
//! set is dropped there. A forked write is durable only at the
//! `CKPT_WRITTEN` barrier: [`crate::writer::ForkedWrite::finish`] commits
//! the pending state then; if the generation aborts mid-drain,
//! [`crate::writer::ForkedWrite::abort`] merges the taken set back into
//! the live address space and discards the pending cache — the next
//! incremental capture is always relative to the last *durable* image.

use crate::image::StoredAs;
use oskit::mem::RegionId;
use oskit::world::{Pid, World};
use simkit::{Snap, SnapReader, SnapWriter};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// `World::ext_slots` key holding the per-process incremental state map.
pub const SLOT: &str = "mtcp-incr-state";
/// `World::ext_slots` key disabling incremental capture (bench baselines).
const DISABLE_SLOT: &str = "mtcp-incr-disable";

/// Magic prefix of an alias extent's virtual-chunk metadata.
pub const ALIAS_MAGIC: &[u8; 8] = b"MTCPALS1";

/// Encode alias-extent metadata: `len` stored bytes at byte offset `off`
/// of the previous image `prev_path`.
pub fn encode_alias(prev_path: &str, off: u64, len: u64) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_raw(ALIAS_MAGIC);
    w.put_varint(off);
    w.put_varint(len);
    prev_path.to_string().save(&mut w);
    w.into_bytes()
}

/// Decode alias-extent metadata; `None` when `meta` is not an alias.
pub fn decode_alias(meta: &[u8]) -> Option<(String, u64, u64)> {
    if meta.len() < ALIAS_MAGIC.len() || &meta[..ALIAS_MAGIC.len()] != ALIAS_MAGIC {
        return None;
    }
    let mut r = SnapReader::new(&meta[ALIAS_MAGIC.len()..]);
    let off = r.get_varint().ok()?;
    let len = r.get_varint().ok()?;
    let path = String::load(&mut r).ok()?;
    Some((path, off, len))
}

/// What the previous capture recorded about one region.
#[derive(Debug, Clone)]
pub struct RegionRec {
    /// Raw (uncompressed) length at capture time.
    pub raw_len: u64,
    /// CRC-32 of the raw bytes (0 for synthetic).
    pub crc: u32,
    /// Stored representation (carries the compressed payload size).
    pub stored: StoredAs,
    /// Byte offset of this region's payload within the image file.
    pub payload_off: u64,
}

/// Per-process cache from the last durable capture.
#[derive(Debug, Clone, Default)]
pub struct IncrState {
    /// Path of the image this state describes.
    pub prev_path: String,
    /// Cached records keyed by live region id.
    pub regions: BTreeMap<RegionId, RegionRec>,
}

type StateMap = Rc<RefCell<BTreeMap<Pid, IncrState>>>;

fn map(w: &World) -> Option<StateMap> {
    w.ext_slots
        .get(SLOT)
        .and_then(|b| b.downcast_ref::<StateMap>())
        .cloned()
}

fn map_or_init(w: &mut World) -> StateMap {
    if let Some(m) = map(w) {
        return m;
    }
    let m: StateMap = Rc::new(RefCell::new(BTreeMap::new()));
    w.ext_slots.insert(SLOT.to_string(), Box::new(m.clone()));
    m
}

/// The cached state for `pid`, if a prior compressed capture recorded one.
pub fn state_of(w: &World, pid: Pid) -> Option<IncrState> {
    map(w).and_then(|m| m.borrow().get(&pid).cloned())
}

/// Install `state` as `pid`'s last-durable-capture cache.
pub fn commit_state(w: &mut World, pid: Pid, state: IncrState) {
    map_or_init(w).borrow_mut().insert(pid, state);
}

/// Drop `pid`'s cache (process death / teardown).
pub fn clear_state(w: &mut World, pid: Pid) {
    if let Some(m) = map(w) {
        m.borrow_mut().remove(&pid);
    }
}

/// Globally enable/disable incremental capture (default: enabled). Bench
/// baselines disable it to measure the full-capture cost on the same
/// workload; captures still arm dirty tracking and record state, so
/// re-enabling takes effect at the next generation.
pub fn set_enabled(w: &mut World, enabled: bool) {
    if enabled {
        w.ext_slots.remove(DISABLE_SLOT);
    } else {
        w.ext_slots.insert(DISABLE_SLOT.to_string(), Box::new(()));
    }
}

/// Whether incremental capture is enabled.
pub fn enabled(w: &World) -> bool {
    !w.ext_slots.contains_key(DISABLE_SLOT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alias_meta_roundtrips() {
        let meta = encode_alias("/shared/ckpt/ckpt_1_gen3.dmtcp", 4096, 123_456);
        assert_eq!(
            decode_alias(&meta),
            Some(("/shared/ckpt/ckpt_1_gen3.dmtcp".to_string(), 4096, 123_456))
        );
    }

    #[test]
    fn non_alias_meta_rejected() {
        assert_eq!(decode_alias(b""), None);
        assert_eq!(decode_alias(b"NOTALIAS........."), None);
        // A truncated alias must not decode.
        let meta = encode_alias("/p", 1, 2);
        assert_eq!(decode_alias(&meta[..meta.len() - 1]), None);
    }
}
