//! Single-process checkpoint/restore roundtrips: memory must come back
//! bit-identical, programs must continue to the same answer, and corruption
//! must be caught by the per-region CRC.

use mtcp::{read_image, restore_into, write_image, WriteMode};
use oskit::mem::FillProfile;
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};
use std::collections::BTreeMap;

/// A deterministic compute loop whose entire state lives in (a) its program
/// struct and (b) a heap region it keeps updating. It finishes by writing
/// its accumulated total into `/result`.
struct Counter {
    pc: u8,
    heap: u64, // RegionId, stored as u64 for snap
    left: u32,
    total: u64,
}
simkit::impl_snap!(struct Counter { pc, heap, left, total });

impl Program for Counter {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        match self.pc {
            0 => {
                self.heap = k.mmap_anon("counter-heap", 4096) as u64;
                k.mmap_synthetic("ballast", 3 << 20, 42, FillProfile::Text);
                self.pc = 1;
                Step::Yield
            }
            1 => {
                if self.left == 0 {
                    // Fold the heap state into the result so memory
                    // corruption would change the answer.
                    let heap = k.mem_read(self.heap as usize, 0, 8);
                    let heap_word = u64::from_le_bytes(heap.try_into().expect("8 bytes"));
                    let fd = k.open("/result", true).expect("result file");
                    k.write(fd, format!("{}:{}", self.total, heap_word).as_bytes())
                        .expect("write result");
                    k.close(fd).expect("close");
                    return Step::Exit(0);
                }
                self.total = self
                    .total
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(self.left as u64);
                self.left -= 1;
                k.mem_write(self.heap as usize, 0, &self.total.to_le_bytes());
                Step::Compute(100_000) // 0.1 ms
            }
            _ => unreachable!(),
        }
    }
    fn tag(&self) -> &'static str {
        "counter"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

fn registry() -> Registry {
    let mut r = Registry::new();
    r.register_snap::<Counter>("counter");
    r
}

fn fresh_world() -> (World, OsSim) {
    (World::new(HwSpec::desktop(), 1, registry()), Sim::new())
}

fn spawn_counter(w: &mut World, sim: &mut OsSim, steps: u32) -> Pid {
    w.spawn(
        sim,
        NodeId(0),
        "counter",
        Box::new(Counter {
            pc: 0,
            heap: 0,
            left: steps,
            total: 1,
        }),
        Pid(1),
        BTreeMap::new(),
    )
}

fn result_of(w: &World) -> Option<String> {
    w.nodes[0]
        .fs
        .read_all("/result")
        .ok()
        .map(|b| String::from_utf8(b).expect("utf8 result"))
}

/// Reference run with no checkpointing at all.
fn reference_answer(steps: u32) -> String {
    let (mut w, mut sim) = fresh_world();
    spawn_counter(&mut w, &mut sim, steps);
    sim.run(&mut w);
    result_of(&w).expect("reference run finished")
}

fn mem_digests(w: &World, pid: Pid) -> Vec<(String, u64)> {
    w.procs[&pid]
        .mem
        .iter()
        .map(|(_, r)| (r.name.clone(), r.content.digest()))
        .collect()
}

/// Run halfway, checkpoint with `mode`, kill the world, restore into a brand
/// new world, run to completion; the answer must match the reference.
fn ckpt_kill_restore(mode: WriteMode) {
    let steps = 500;
    let reference = reference_answer(steps);

    // --- Original world: run halfway, freeze, write image. ---
    let (mut w, mut sim) = fresh_world();
    let pid = spawn_counter(&mut w, &mut sim, steps);
    sim.run_until(&mut w, Nanos::from_millis(25)); // ~250 of 500 steps
    w.suspend_user_threads(&mut sim, pid);
    let digests_before = mem_digests(&w, pid);
    let report = write_image(&mut w, sim.now(), pid, "/ckpt.img", mode, pid.0, vec![7, 7]);
    assert!(report.image_bytes > 0);
    assert_eq!(
        w.nodes[0].fs.size("/ckpt.img"),
        Some(report.image_bytes),
        "file size matches report"
    );
    // Carry the image file (and nothing else) to a new world: the cluster
    // "crashed" and we restart elsewhere.
    let image_file = w.nodes[0]
        .fs
        .get("/ckpt.img")
        .expect("image written")
        .clone();
    drop(w);
    drop(sim);

    // --- New world: restore into a fresh shell process. ---
    let (mut w2, mut sim2) = fresh_world();
    w2.nodes[0].fs.create("/ckpt.img").expect("fs writable");
    *w2.nodes[0].fs.get_mut("/ckpt.img").expect("file") = image_file;

    let img = read_image(&w2, NodeId(0), "/ckpt.img").expect("header parses");
    assert_eq!(img.vpid, pid.0);
    assert_eq!(img.cmd, "counter");
    assert_eq!(img.dmtcp_meta, vec![7, 7]);
    assert_eq!(img.threads.len(), 1);

    // Shell process (what dmtcp_restart forks), with a placeholder program.
    struct Shell;
    impl Program for Shell {
        fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
            Step::ExitThread
        }
        fn tag(&self) -> &'static str {
            "shell"
        }
        fn save(&self) -> Vec<u8> {
            Vec::new()
        }
    }
    let new_pid = w2.spawn(
        &mut sim2,
        NodeId(0),
        "dmtcp_restart",
        Box::new(Shell),
        Pid(1),
        BTreeMap::new(),
    );
    let rep = restore_into(&mut w2, sim2.now(), new_pid, NodeId(0), "/ckpt.img", &img)
        .expect("restore succeeds");
    assert_eq!(rep.image_bytes, report.image_bytes);
    assert_eq!(rep.raw_bytes, report.raw_bytes);

    // Memory must be bit-identical (digest compares real bytes / recipes).
    let digests_after = mem_digests(&w2, new_pid);
    assert_eq!(
        digests_before, digests_after,
        "memory not restored identically"
    );

    // Resume and finish.
    w2.resume_user_threads(&mut sim2, new_pid);
    sim2.run(&mut w2);
    assert_eq!(
        result_of(&w2).as_deref(),
        Some(reference.as_str()),
        "{mode:?}"
    );
}

#[test]
fn uncompressed_roundtrip_resumes_to_same_answer() {
    ckpt_kill_restore(WriteMode::Uncompressed);
}

#[test]
fn compressed_roundtrip_resumes_to_same_answer() {
    ckpt_kill_restore(WriteMode::Compressed);
}

#[test]
fn forked_roundtrip_resumes_to_same_answer() {
    ckpt_kill_restore(WriteMode::ForkedCompressed);
}

#[test]
fn compressed_image_is_smaller_and_slower_than_uncompressed() {
    let (mut w, mut sim) = fresh_world();
    let pid = spawn_counter(&mut w, &mut sim, 100);
    sim.run_until(&mut w, Nanos::from_millis(5));
    w.suspend_user_threads(&mut sim, pid);
    let now = sim.now();
    let un = write_image(
        &mut w,
        now,
        pid,
        "/u.img",
        WriteMode::Uncompressed,
        pid.0,
        vec![],
    );
    let co = write_image(
        &mut w,
        now,
        pid,
        "/c.img",
        WriteMode::Compressed,
        pid.0,
        vec![],
    );
    assert!(
        co.image_bytes < un.image_bytes / 2,
        "text ballast should compress well: {} vs {}",
        co.image_bytes,
        un.image_bytes
    );
    assert!(
        co.image_complete_at > un.image_complete_at,
        "gzip dominates"
    );
}

#[test]
fn forked_mode_resumes_parent_long_before_image_completes() {
    let (mut w, mut sim) = fresh_world();
    let pid = spawn_counter(&mut w, &mut sim, 100);
    sim.run_until(&mut w, Nanos::from_millis(5));
    w.suspend_user_threads(&mut sim, pid);
    let now = sim.now();
    let rep = write_image(
        &mut w,
        now,
        pid,
        "/f.img",
        WriteMode::ForkedCompressed,
        pid.0,
        vec![],
    );
    let pause = rep.resume_at - now;
    let full = rep.image_complete_at - now;
    assert!(
        pause.as_secs_f64() < full.as_secs_f64() / 5.0,
        "fork pause {pause:?} vs full write {full:?}"
    );
}

#[test]
fn corrupted_payload_is_rejected_by_crc() {
    let (mut w, mut sim) = fresh_world();
    let pid = spawn_counter(&mut w, &mut sim, 100);
    sim.run_until(&mut w, Nanos::from_millis(5));
    w.suspend_user_threads(&mut sim, pid);
    write_image(
        &mut w,
        sim.now(),
        pid,
        "/x.img",
        WriteMode::Uncompressed,
        pid.0,
        vec![],
    );

    // Flip one byte of the heap payload (well past the header).
    let img = read_image(&w, NodeId(0), "/x.img").expect("parses");
    {
        let f = w.nodes[0].fs.get_mut("/x.img").expect("image");
        let blob = &mut f.blob;
        // First chunk is real: header + real payloads; flip its last byte.
        let chunks = blob.chunks().len();
        assert!(chunks >= 1);
        let mut rebuilt = oskit::fs::Blob::new();
        for (i, c) in blob.chunks().iter().enumerate() {
            match c {
                oskit::fs::Chunk::Real(b) => {
                    let mut b = b.clone();
                    if i == 0 {
                        let last = b.len() - 1;
                        b[last] ^= 0xFF;
                    }
                    rebuilt.append_bytes(&b);
                }
                oskit::fs::Chunk::Virtual { len, meta } => {
                    rebuilt.append_virtual(*len, meta.clone())
                }
            }
        }
        f.blob = rebuilt;
    }
    struct Shell;
    impl Program for Shell {
        fn step(&mut self, _k: &mut Kernel<'_>) -> Step {
            Step::ExitThread
        }
        fn tag(&self) -> &'static str {
            "shell"
        }
        fn save(&self) -> Vec<u8> {
            Vec::new()
        }
    }
    let new_pid = w.spawn(
        &mut sim,
        NodeId(0),
        "dmtcp_restart",
        Box::new(Shell),
        Pid(1),
        BTreeMap::new(),
    );
    let err = restore_into(&mut w, sim.now(), new_pid, NodeId(0), "/x.img", &img).unwrap_err();
    assert!(
        matches!(
            err,
            mtcp::reader::RestoreError::CrcMismatch { .. }
                | mtcp::reader::RestoreError::BadPayload(_)
        ),
        "got {err}"
    );
}

#[test]
fn synthetic_regions_are_virtual_in_the_file() {
    let (mut w, mut sim) = fresh_world();
    let pid = spawn_counter(&mut w, &mut sim, 100);
    sim.run_until(&mut w, Nanos::from_millis(5));
    w.suspend_user_threads(&mut sim, pid);
    let rep = write_image(
        &mut w,
        sim.now(),
        pid,
        "/s.img",
        WriteMode::Compressed,
        pid.0,
        vec![],
    );
    let f = w.nodes[0].fs.get("/s.img").expect("image");
    let has_virtual = f
        .blob
        .chunks()
        .iter()
        .any(|c| matches!(c, oskit::fs::Chunk::Virtual { .. }));
    assert!(has_virtual, "3 MiB text ballast should be a virtual extent");
    // But the file still reports its full on-disk size.
    assert_eq!(f.blob.len(), rep.image_bytes);
    // The ballast is text: the image must be much smaller than raw.
    assert!(rep.image_bytes < rep.raw_bytes / 2);
}
