//! Typed image-validation errors: every way an image file can be damaged —
//! missing, truncated inside the header, bad magic, header-CRC mismatch,
//! truncated payload, bit-flipped payload — must surface as the matching
//! [`ImageError`] variant, never a panic or a silently-wrong restore. This
//! is the contract the restart path's fall-back-to-older-generation logic
//! (and the fault matrix's torn-image cells) relies on.

use mtcp::{verify_image, write_image, CkptImage, HeaderError, ImageError, WriteMode};
use oskit::program::{Program, Registry, Step};
use oskit::world::{NodeId, OsSim, Pid, World};
use oskit::{HwSpec, Kernel};
use simkit::{Nanos, Sim, Snap};
use std::collections::BTreeMap;

/// Minimal checkpointable program: a snap-able counter with one heap region,
/// so the image has a header, a thread record, and real payload bytes.
struct Ticker {
    pc: u8,
    heap: u64,
    ticks: u32,
}
simkit::impl_snap!(struct Ticker { pc, heap, ticks });

impl Program for Ticker {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            self.heap = k.mmap_anon("ticker-heap", 4096) as u64;
            self.pc = 1;
        }
        self.ticks += 1;
        k.mem_write(self.heap as usize, 0, &self.ticks.to_le_bytes());
        Step::Compute(100_000)
    }
    fn tag(&self) -> &'static str {
        "ticker"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

const IMG: &str = "/img";

/// A world holding a freshly written, valid image at [`IMG`]. Also returns
/// the encoded header length so tests can aim their damage precisely at the
/// header, the header CRC, or the payload.
fn world_with_image() -> (World, OsSim, usize) {
    let mut reg = Registry::new();
    reg.register_snap::<Ticker>("ticker");
    let mut w = World::new(HwSpec::desktop(), 1, reg);
    let mut sim: OsSim = Sim::new();
    let pid = w.spawn(
        &mut sim,
        NodeId(0),
        "ticker",
        Box::new(Ticker {
            pc: 0,
            heap: 0,
            ticks: 0,
        }),
        Pid(1),
        BTreeMap::new(),
    );
    sim.run_until(&mut w, Nanos::from_millis(3));
    w.suspend_user_threads(&mut sim, pid);
    write_image(
        &mut w,
        sim.now(),
        pid,
        IMG,
        WriteMode::Uncompressed,
        pid.0,
        vec![],
    );
    let head = {
        let f = w.nodes[0].fs.get(IMG).expect("image written");
        match f.blob.chunks().first() {
            Some(oskit::fs::Chunk::Real(b)) => b.clone(),
            _ => panic!("header chunk must be real"),
        }
    };
    let (_, header_len) = CkptImage::decode_header(&head).expect("fresh image parses");
    (w, sim, header_len)
}

fn damage(w: &mut World, f: impl FnOnce(&mut oskit::fs::Blob)) {
    f(&mut w.nodes[0].fs.get_mut(IMG).expect("image").blob);
}

#[test]
fn intact_image_verifies_clean() {
    let (w, _sim, _) = world_with_image();
    let img = verify_image(&w, NodeId(0), IMG).expect("valid image verifies");
    assert_eq!(img.cmd, "ticker");
    assert_eq!(img.threads.len(), 1);
    assert!(!img.regions.is_empty());
}

#[test]
fn missing_image_is_not_found() {
    let (w, _sim, _) = world_with_image();
    assert_eq!(
        verify_image(&w, NodeId(0), "/no/such.img"),
        Err(ImageError::NotFound)
    );
}

#[test]
fn truncated_header_is_typed_truncated() {
    let (mut w, _sim, _) = world_with_image();
    // Cut inside the 8-byte magic: not even the magic survives.
    damage(&mut w, |b| {
        b.truncate(4);
    });
    assert_eq!(
        verify_image(&w, NodeId(0), IMG),
        Err(ImageError::BadHeader(HeaderError::Truncated))
    );
}

#[test]
fn truncated_header_body_is_typed_truncated() {
    let (mut w, _sim, header_len) = world_with_image();
    // Magic intact, header body cut short.
    damage(&mut w, |b| {
        b.truncate(header_len as u64 / 2);
    });
    assert_eq!(
        verify_image(&w, NodeId(0), IMG),
        Err(ImageError::BadHeader(HeaderError::Truncated))
    );
}

#[test]
fn flipped_magic_is_bad_magic() {
    let (mut w, _sim, _) = world_with_image();
    damage(&mut w, |b| assert!(b.flip_bit(0, 3)));
    assert_eq!(
        verify_image(&w, NodeId(0), IMG),
        Err(ImageError::BadHeader(HeaderError::BadMagic))
    );
}

#[test]
fn flipped_header_body_is_bad_crc() {
    let (mut w, _sim, header_len) = world_with_image();
    // Last byte of the snap-encoded body, just before the 4-byte header CRC.
    damage(&mut w, |b| {
        assert!(b.flip_bit(header_len as u64 - 5, 0));
    });
    assert_eq!(
        verify_image(&w, NodeId(0), IMG),
        Err(ImageError::BadHeader(HeaderError::BadCrc))
    );
}

#[test]
fn truncated_payload_is_bad_payload() {
    let (mut w, _sim, header_len) = world_with_image();
    // Header intact, first region payload cut mid-way.
    damage(&mut w, |b| {
        b.truncate(header_len as u64 + 10);
    });
    match verify_image(&w, NodeId(0), IMG) {
        Err(ImageError::BadPayload(region)) => assert!(!region.is_empty()),
        other => panic!("expected BadPayload, got {other:?}"),
    }
}

#[test]
fn flipped_payload_bit_is_crc_mismatch() {
    let (mut w, _sim, header_len) = world_with_image();
    // Well past the header: inside the first region's stored bytes.
    damage(&mut w, |b| {
        assert!(b.flip_bit(header_len as u64 + 100, 5));
    });
    match verify_image(&w, NodeId(0), IMG) {
        Err(ImageError::CrcMismatch { region, .. }) => assert!(!region.is_empty()),
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
}

/// Several heap regions so damage can target one in the *middle* of the
/// region table.
struct MultiMapper {
    pc: u8,
}
simkit::impl_snap!(struct MultiMapper { pc });

impl Program for MultiMapper {
    fn step(&mut self, k: &mut Kernel<'_>) -> Step {
        if self.pc == 0 {
            for (i, name) in ["seg-a", "seg-b", "seg-c"].iter().enumerate() {
                let id = k.mmap_anon(name, 2048);
                k.mem_write(id, 0, &[i as u8 + 1; 64]);
            }
            self.pc = 1;
        }
        Step::Compute(100_000)
    }
    fn tag(&self) -> &'static str {
        "multi-mapper"
    }
    fn save(&self) -> Vec<u8> {
        self.to_snap_bytes()
    }
}

#[test]
fn crc_mismatch_reports_region_index_and_offset() {
    let mut reg = Registry::new();
    reg.register_snap::<MultiMapper>("multi-mapper");
    let mut w = World::new(HwSpec::desktop(), 1, reg);
    let mut sim: OsSim = Sim::new();
    let pid = w.spawn(
        &mut sim,
        NodeId(0),
        "multi-mapper",
        Box::new(MultiMapper { pc: 0 }),
        Pid(1),
        BTreeMap::new(),
    );
    sim.run_until(&mut w, Nanos::from_millis(3));
    w.suspend_user_threads(&mut sim, pid);
    write_image(
        &mut w,
        sim.now(),
        pid,
        IMG,
        WriteMode::Uncompressed,
        pid.0,
        vec![],
    );
    let img = verify_image(&w, NodeId(0), IMG).expect("fresh image verifies");
    assert!(img.regions.len() >= 3, "need a middle region to corrupt");
    let head = {
        let f = w.nodes[0].fs.get(IMG).expect("image written");
        match f.blob.chunks().first() {
            Some(oskit::fs::Chunk::Real(b)) => b.clone(),
            _ => panic!("header chunk must be real"),
        }
    };
    let (_, header_len) = CkptImage::decode_header(&head).expect("header parses");
    // Expected payload offset of region 1: header, then region 0's bytes.
    let stored_len = |r: &mtcp::RegionMeta| match &r.stored {
        mtcp::StoredAs::Real { comp_len } => *comp_len,
        mtcp::StoredAs::Shared { comp_len, .. } => *comp_len,
        mtcp::StoredAs::Synthetic { comp_len, .. } => *comp_len,
    };
    let target_off = header_len as u64 + stored_len(&img.regions[0]);
    // Single-bit flip a few bytes into the middle region's payload.
    damage(&mut w, |b| assert!(b.flip_bit(target_off + 7, 2)));
    match verify_image(&w, NodeId(0), IMG) {
        Err(ImageError::CrcMismatch {
            region,
            index,
            offset,
        }) => {
            assert_eq!(index, 1, "the corrupted region is index 1");
            assert_eq!(offset, target_off, "offset points at its payload");
            assert_eq!(region, img.regions[1].name);
        }
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
}
